//! The serving engine: concurrent readers over epoch-published
//! snapshots, a single background writer applying delta batches.
//!
//! ```text
//!            submit(delta)                 publish(epoch+1)
//!  clients ───────────────► queue ─► writer worker ─► SnapshotCell
//!                                   (merge batch,         │ load
//!                                    with_delta,          ▼
//!                                    refresh views)   Arc<EpochSnapshot>
//!  readers ◄──────────────────────────────────────────────┘
//!           execute(): plan-cache lookup → execute_planned
//! ```
//!
//! Readers never block writers and writers never block readers: queries
//! run against an immutable `Arc<EpochSnapshot>`, and the writer builds
//! the successor state off to the side before atomically publishing it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Instant;

use kaskade_core::{
    DdlOp, DeltaError, GraphDelta, Kaskade, KaskadeError, RefreshOptions, Snapshot,
};
use kaskade_graph::{ExternalIdTable, IdRemap, VertexId};
use kaskade_query::{Query, Table};

use crate::metrics::{Metrics, MetricsReport};
use crate::plan_cache::{plan_key, PlanCache};
use crate::pool::WorkerPool;
use crate::snapshot::{EpochSnapshot, Reader, SnapshotCell};
use crate::trace::{Stage, Tracer};
use crate::wal::{Wal, WalConfig};

/// Tuning knobs of the [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Maximum number of queued deltas merged into one apply+publish
    /// cycle. Larger batches amortize view refresh and stats
    /// recomputation; smaller batches reduce refresh lag.
    pub max_batch: usize,
    /// Capacity of the delta queue. When the writer worker falls this
    /// far behind, [`Engine::submit`] fails fast with
    /// [`SubmitError::Backpressure`] instead of buffering without
    /// bound; rejected submissions are counted in
    /// [`MetricsReport::deltas_backpressured`].
    pub queue_capacity: usize,
    /// Dead-slot fraction of total id-slot capacity (vertex + edge
    /// slots) above which the writer runs **slot compaction** after a
    /// publish: dead slots are dropped, live ids renumber densely, and
    /// the compacted state publishes as a fresh epoch — the fence
    /// behind which queued deltas built against older epochs are
    /// rebased through the recorded [`IdRemap`]s. Default `0.5`, which
    /// bounds total slot capacity at ~2× the live element count under
    /// any churn; `f64::INFINITY` disables compaction (the shards of a
    /// [`crate::ShardedEngine`] run disabled and compact only on their
    /// coordinator's command, so shard ids stay globally aligned).
    pub compact_dead_ratio: f64,
    /// The tracing subsystem (spans + flight recorder + slow-query
    /// log) this engine reports into. `None` creates a private disabled
    /// tracer — instrumented sites then cost one relaxed atomic load.
    /// A [`crate::ShardedEngine`] passes its coordinator tracer to
    /// every shard so one flight recorder sees the whole pipeline.
    pub tracer: Option<Arc<Tracer>>,
    /// Label prefixed to this engine's span details (e.g. `shard3`),
    /// so flight-recorder dumps attribute write-path spans to the
    /// engine that emitted them. Empty for a standalone engine.
    pub trace_label: String,
    /// The persistent worker pool this engine's write path runs its
    /// parallel view refresh on. `None` creates a private pool with
    /// [`EngineConfig::pool_threads`] workers. A
    /// [`crate::ShardedEngine`] passes one shared pool to every shard
    /// so the whole runtime parks the same fixed thread set.
    pub pool: Option<Arc<WorkerPool>>,
    /// Worker-thread count for the private pool created when
    /// [`EngineConfig::pool`] is `None`; `0` sizes it to the machine
    /// (available parallelism minus the helping caller).
    pub pool_threads: usize,
    /// Durability: when set, the writer appends one epoch-tagged WAL
    /// record per merged batch **before** publishing it and
    /// checkpoints the full state every
    /// [`WalConfig::checkpoint_every`] batches. [`Engine::recover`]
    /// restores the latest checkpoint + log on restart. `None` (the
    /// default) serves purely in memory.
    pub wal: Option<WalConfig>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_batch: 64,
            queue_capacity: 1024,
            compact_dead_ratio: 0.5,
            tracer: None,
            trace_label: String::new(),
            pool: None,
            pool_threads: 0,
            wal: None,
        }
    }
}

/// Per-submit options of [`Engine::submit`] / `ShardedEngine::submit`.
///
/// The default (`SubmitOpts::default()`) means "my delta's ids are in
/// the id space of the currently published snapshot" — the common case
/// for clients that just loaded a snapshot, resolved ids, and submit
/// immediately.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubmitOpts {
    /// Epoch of the snapshot the delta's existing-vertex ids were
    /// resolved against. If slot compactions have renumbered ids since
    /// that epoch, the writer rebases the delta through the recorded
    /// remaps before applying it — in-flight writes survive compaction
    /// without the client ever seeing the renumbering. `None` means
    /// the currently published epoch.
    pub based_on: Option<u64>,
}

impl SubmitOpts {
    /// Options for a delta whose ids were resolved against the snapshot
    /// published at `epoch`.
    pub fn based_on(epoch: u64) -> Self {
        SubmitOpts {
            based_on: Some(epoch),
        }
    }
}

/// Compaction never fires below this many dead slots, whatever the
/// ratio: renumbering a toy graph to reclaim a handful of slots would
/// churn client-visible ids for no measurable memory win.
pub(crate) const COMPACT_MIN_DEAD_SLOTS: usize = 8;

/// The compaction policy: total dead slots (vertex + edge) at or above
/// `dead_ratio` of total slot capacity, with the absolute
/// [`COMPACT_MIN_DEAD_SLOTS`] floor.
pub(crate) fn should_compact(g: &kaskade_graph::Graph, dead_ratio: f64) -> bool {
    let dead = (g.vertex_slots() - g.vertex_count()) + (g.edge_slots() - g.edge_count());
    let total = g.vertex_slots() + g.edge_slots();
    dead >= COMPACT_MIN_DEAD_SLOTS && dead as f64 >= dead_ratio * total as f64
}

/// Total id-slot capacity of a graph (live + dead, vertices + edges) —
/// what compaction shrinks and the `slots_reclaimed` metric measures.
pub(crate) fn slot_capacity(g: &kaskade_graph::Graph) -> usize {
    g.vertex_slots() + g.edge_slots()
}

/// The remaps of recent compactions, kept by a writer loop so deltas
/// that were queued (or built) against pre-compaction epochs can be
/// rebased into the current id space at apply time. Bounded: after
/// [`MAX_REMAP_HISTORY`] further compactions a stale delta can no
/// longer be rebased and is rejected instead of silently aliasing
/// reused ids — in practice a delta would have to sit in the bounded
/// queue across eight compaction cycles to hit this.
pub(crate) struct RemapHistory {
    /// `(publish epoch of the compacted snapshot, remap)`, oldest first.
    entries: Vec<(u64, Arc<IdRemap>)>,
    /// Epoch of the newest discarded entry; deltas based on anything
    /// older can no longer be rebased. Seeded with the engine's start
    /// epoch: after recovery, compactions that published before the
    /// restart are folded into the checkpoint (or replayed) with their
    /// remaps gone, so a slot-addressed delta based on any pre-restart
    /// epoch must be rejected, never rebased through zero remaps.
    dropped: u64,
}

pub(crate) const MAX_REMAP_HISTORY: usize = 8;

impl RemapHistory {
    /// An empty history for an engine whose first published epoch is
    /// `start_epoch`; slot-addressed deltas based on anything older
    /// are unrebasable and rejected.
    pub(crate) fn starting_at(start_epoch: u64) -> Self {
        RemapHistory {
            entries: Vec::new(),
            dropped: start_epoch,
        }
    }

    /// Records the remap of a compaction published at `epoch`.
    pub(crate) fn record(&mut self, epoch: u64, remap: Arc<IdRemap>) {
        self.entries.push((epoch, remap));
        if self.entries.len() > MAX_REMAP_HISTORY {
            let (e, _) = self.entries.remove(0);
            self.dropped = e;
        }
    }

    /// Rebases `delta` from the id space of the snapshot published at
    /// `based_on` into the current id space, applying every recorded
    /// compaction that happened after it, in order. `Err(())` means
    /// the delta predates the retained history and must be rejected —
    /// but only deltas that actually address vertices by **slot id**
    /// can go stale: a delta whose references are all external ids or
    /// batch-local indices has nothing a renumbering could alias, so
    /// it is accepted untouched whatever its `based_on`.
    pub(crate) fn rebase(&self, delta: &mut GraphDelta, based_on: u64) -> Result<(), ()> {
        if based_on < self.dropped {
            return if delta.has_slot_refs() {
                Err(())
            } else {
                Ok(())
            };
        }
        for (epoch, remap) in &self.entries {
            if *epoch > based_on {
                delta.remap(remap);
            }
        }
        Ok(())
    }

    /// The oldest `based_on` epoch slot-addressed deltas can still be
    /// rebased from (the submit-side staleness watermark).
    pub(crate) fn oldest_supported(&self) -> u64 {
        self.dropped
    }
}

/// A write-path message: a queued delta (with its enqueue time, for
/// refresh-lag accounting, and the epoch its ids were resolved
/// against), a coordinator-ordered compaction, or a flush
/// acknowledgement request. Shared by the single engine's writer
/// worker and the sharded router.
pub(crate) enum Msg {
    Delta(Box<GraphDelta>, Instant, u64),
    /// Apply this vertex remap (computed by a sharded coordinator from
    /// the global graph) to the local state and publish. Acts as a
    /// batch boundary: deltas queued before it are in the old id
    /// space and apply first.
    Compact(Arc<IdRemap>),
    /// Apply a catalog mutation (create/drop a materialized view) and
    /// publish it as its own epoch. A batch boundary like `Compact`:
    /// deltas queued before it refresh against the old catalog first,
    /// so "submit delta, then DDL" observes sequential semantics.
    Ddl(DdlOp),
    Flush(mpsc::Sender<u64>),
}

/// Enqueues a delta on a bounded write queue with the engine's submit
/// contract: self-referential validation up front, a conservative
/// queued counter, and typed `Backpressure`/`Closed` errors with
/// nothing enqueued on failure. `based_on` is the epoch of the
/// snapshot the delta's existing-vertex ids were resolved against —
/// the writer rebases the delta through any compactions published
/// since. Shared by [`Engine::submit`] and the sharded engine's
/// submit.
pub(crate) fn enqueue_delta(
    tx: &mpsc::SyncSender<Msg>,
    queued: &AtomicU64,
    metrics: &Metrics,
    delta: GraphDelta,
    based_on: u64,
) -> Result<(), SubmitError> {
    // usize::MAX vertex bound: only the New-index checks can fail
    delta.validate(usize::MAX).map_err(SubmitError::Invalid)?;
    // increment BEFORE sending so the counter stays conservative:
    // the worker may consume and decrement the instant send lands
    queued.fetch_add(1, Ordering::Relaxed);
    match tx.try_send(Msg::Delta(Box::new(delta), Instant::now(), based_on)) {
        Ok(()) => Ok(()),
        Err(mpsc::TrySendError::Full(_)) => {
            queued.fetch_sub(1, Ordering::Relaxed);
            metrics.record_backpressure();
            Err(SubmitError::Backpressure)
        }
        Err(mpsc::TrySendError::Disconnected(_)) => {
            queued.fetch_sub(1, Ordering::Relaxed);
            Err(SubmitError::Closed)
        }
    }
}

/// One assembled write batch (see [`collect_batch`]).
pub(crate) struct Batch {
    /// The merged batch delta (empty when `batched == 0`).
    pub delta: GraphDelta,
    /// Deltas merged into `delta`.
    pub batched: usize,
    /// Deltas dropped as invalid at apply time.
    pub rejected: usize,
    /// Of the rejected, how many were dropped as **stale** — slot
    /// references based on an epoch older than the retained remap
    /// history (counted separately in `deltas_stale_rejected`).
    pub stale: usize,
    /// Enqueue time of the oldest delta in the batch.
    pub oldest: Option<Instant>,
    /// Flush acknowledgements collected while assembling.
    pub acks: Vec<mpsc::Sender<u64>>,
    /// A coordinator-ordered compaction encountered while draining.
    /// It bounds the batch: deltas queued before it (this batch) are
    /// in the pre-compaction id space and must apply first; the
    /// caller applies the remap after publishing the batch.
    pub compact: Option<Arc<IdRemap>>,
    /// A catalog mutation encountered while draining. Also a batch
    /// boundary: deltas queued before it (this batch) refresh against
    /// the pre-DDL catalog, then the caller applies the DDL and
    /// publishes it as its own epoch.
    pub ddl: Option<DdlOp>,
    /// Whether the queue is still open (false = shutdown signalled).
    pub open: bool,
}

/// Blocks for the next message, then drains the queue into one merged
/// batch of up to `max_batch` deltas, validating each against `graph`
/// (the worker's current state) plus the batch's own pending effects.
/// This is THE accept/reject decision point of the write path — the
/// single engine's writer loop and the sharded router both use it, so
/// a delta is dropped by one iff it is dropped by the other.
pub(crate) fn collect_batch(
    rx: &mpsc::Receiver<Msg>,
    graph: &kaskade_graph::Graph,
    max_batch: usize,
    remaps: &RemapHistory,
    extids: &ExternalIdTable,
) -> Batch {
    let mut batch = Batch {
        delta: GraphDelta::new(),
        batched: 0,
        rejected: 0,
        stale: 0,
        oldest: None,
        acks: Vec::new(),
        compact: None,
        ddl: None,
        open: true,
    };
    let mut pending = match rx.recv() {
        Ok(msg) => Some(msg),
        Err(_) => {
            batch.open = false;
            None
        }
    };
    loop {
        match pending.take() {
            Some(Msg::Delta(mut delta, enqueued, based_on)) => {
                // four gates, in order, any failure dropping (and
                // counting) the delta — never killing the worker and
                // with it the engine:
                // 1. rebase through any compactions published since
                //    the delta's ids were resolved; too-stale
                //    slot-addressed deltas (older than the retained
                //    remap history) are rejected rather than risking
                //    silent id aliasing — external-id-addressed
                //    deltas are exempt;
                // 2. resolve external-id references against the
                //    writer's table plus the batch's own pending
                //    insertions (after this the delta is purely
                //    slot-addressed);
                // 3. exact validity at the only point where the
                //    apply-time graph state is known: base graph
                //    (slots and liveness) plus the vertices earlier
                //    deltas of this batch add (sequential-apply
                //    equivalence of merge);
                // 4. merge itself refuses an insert onto a vertex an
                //    earlier delta of this batch retracts (applied one
                //    at a time, that insert would see it already dead).
                let accepted = match remaps.rebase(&mut delta, based_on) {
                    Err(()) => {
                        batch.stale += 1;
                        false
                    }
                    Ok(()) => {
                        delta.resolve_external(extids, graph, &batch.delta).is_ok()
                            && delta
                                .validate_against(graph, batch.delta.vertices.len())
                                .is_ok()
                            && batch.delta.merge(&delta).is_ok()
                    }
                };
                if accepted {
                    batch.batched += 1;
                    batch.oldest.get_or_insert(enqueued);
                    if batch.batched >= max_batch {
                        break;
                    }
                } else {
                    batch.rejected += 1;
                }
            }
            Some(Msg::Compact(remap)) => {
                // batch boundary: everything drained so far predates
                // the compaction; later messages wait for next loop
                batch.compact = Some(remap);
                break;
            }
            Some(Msg::Ddl(op)) => {
                // batch boundary, same as Compact: deltas drained so
                // far refresh against the pre-DDL catalog first
                batch.ddl = Some(op);
                break;
            }
            Some(Msg::Flush(ack)) => batch.acks.push(ack),
            None => {}
        }
        match rx.try_recv() {
            Ok(msg) => pending = Some(msg),
            Err(mpsc::TryRecvError::Empty) => break,
            Err(mpsc::TryRecvError::Disconnected) => {
                batch.open = false;
                break;
            }
        }
    }
    batch
}

/// Why [`Engine::submit`] refused a delta.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The delta is structurally broken (a [`kaskade_core::VRef::New`]
    /// index past its own vertex list, or a retraction referencing an
    /// uninserted new vertex); it could never apply.
    Invalid(DeltaError),
    /// The delta queue is full (the writer worker is behind). The
    /// client should retry later or shed load; nothing was enqueued.
    Backpressure,
    /// The delta addresses vertices by **slot id** resolved against an
    /// epoch older than the retained compaction-remap history — its
    /// ids can no longer be rebased safely. Re-resolve against a
    /// current snapshot and resubmit, or address vertices by stable
    /// external id ([`GraphDelta::add_vertex_ext`] /
    /// [`kaskade_core::VRef::External`]), which never goes stale.
    /// Counted in [`MetricsReport::deltas_stale_rejected`].
    StaleEpoch {
        /// The oldest `based_on` epoch the engine can still rebase
        /// slot-addressed deltas from.
        oldest_supported: u64,
    },
    /// The writer worker is gone (the engine is shutting down).
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Invalid(e) => write!(f, "invalid delta: {e}"),
            SubmitError::Backpressure => write!(f, "delta queue is full (backpressure)"),
            SubmitError::StaleEpoch { oldest_supported } => write!(
                f,
                "delta's slot ids are stale (based on an epoch older than {oldest_supported}); \
                 re-resolve against a current snapshot or use external ids"
            ),
            SubmitError::Closed => write!(f, "engine is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// State shared between the engine handle, its readers, and the writer
/// worker.
#[derive(Debug)]
struct Shared {
    cell: Arc<SnapshotCell>,
    cache: PlanCache,
    metrics: Metrics,
    queued: AtomicU64,
    tracer: Arc<Tracer>,
    trace_label: String,
    pool: Arc<WorkerPool>,
    /// The writer's staleness watermark (mirror of
    /// [`RemapHistory::oldest_supported`]): slot-addressed submissions
    /// based on anything older fail fast with
    /// [`SubmitError::StaleEpoch`] instead of dying silently in the
    /// queue.
    oldest_supported: AtomicU64,
}

/// The concurrent serving runtime.
///
/// Cheap to share (`Engine` is `Sync`; wrap it in an `Arc` or use
/// scoped threads). Reads go through [`Engine::execute`] or a
/// per-thread [`Engine::reader`]; writes through [`Engine::submit`].
/// Dropping the engine shuts the writer worker down after it drains
/// the queue.
#[derive(Debug)]
pub struct Engine {
    shared: Arc<Shared>,
    tx: mpsc::SyncSender<Msg>,
    worker: Option<JoinHandle<()>>,
}

impl Engine {
    /// Serves the given state (epoch 0) with default tuning.
    pub fn new(state: Snapshot) -> Self {
        Self::with_config(state, EngineConfig::default())
    }

    /// Serves the current state of a [`Kaskade`] instance (the instance
    /// itself is left untouched; the engine evolves its own copy).
    pub fn from_kaskade(kaskade: &Kaskade) -> Self {
        Self::new(kaskade.snapshot())
    }

    /// Serves the given state (epoch 0) with explicit tuning. Panics
    /// if [`EngineConfig::wal`] is set and the log cannot be opened —
    /// use [`Engine::try_with_config`] to handle that.
    pub fn with_config(state: Snapshot, config: EngineConfig) -> Self {
        Self::try_with_config(state, config).expect("open write-ahead log")
    }

    /// Serves the given state (epoch 0) with explicit tuning,
    /// surfacing WAL-open failures instead of panicking. With
    /// [`EngineConfig::wal`] set, fails (`AlreadyExists`) if the WAL
    /// directory already holds durable state and
    /// [`WalConfig::overwrite`] is off — a fresh start must not
    /// silently wipe a previous run's log; recover it or point at an
    /// empty directory.
    pub fn try_with_config(state: Snapshot, config: EngineConfig) -> std::io::Result<Self> {
        Self::start(state, 0, ExternalIdTable::new(), config, false)
    }

    /// Recovers the engine from the WAL directory in
    /// [`EngineConfig::wal`] (required): loads the latest valid
    /// checkpoint, replays every intact log record after it, and
    /// resumes serving — and logging — at the recovered epoch.
    /// `Ok(None)` means the directory holds nothing recoverable; the
    /// caller starts fresh with [`Engine::try_with_config`].
    ///
    /// Pre-restart compactions are folded into the recovered state and
    /// their remaps are gone, so after recovery a **slot-addressed**
    /// delta based on any epoch before the recovered one fails with
    /// [`SubmitError::StaleEpoch`]; external-id-addressed deltas are
    /// epoch-free and survive restarts unconditionally.
    pub fn recover(config: EngineConfig) -> std::io::Result<Option<Self>> {
        let wal = config.wal.as_ref().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "Engine::recover requires EngineConfig.wal",
            )
        })?;
        match crate::wal::recover(&wal.dir)? {
            None => Ok(None),
            Some(r) => Self::start(r.state, r.epoch, r.extids, config, true).map(Some),
        }
    }

    /// The one constructor behind fresh starts and recovery: publishes
    /// `state` at `epoch`, seats the external-id table in the writer,
    /// and (when configured) opens the WAL with a fresh checkpoint of
    /// exactly this state — so the on-disk frontier always equals the
    /// first published snapshot. `recovered` marks the post-recovery
    /// reopen, which may legitimately collapse the WAL directory's
    /// existing state into the new checkpoint; a fresh start refuses
    /// that (see [`Engine::try_with_config`]).
    fn start(
        state: Snapshot,
        epoch: u64,
        extids: ExternalIdTable,
        config: EngineConfig,
        recovered: bool,
    ) -> std::io::Result<Self> {
        let wal = match &config.wal {
            Some(cfg) if recovered => Some(Wal::open_after_recovery(
                cfg.clone(),
                &state,
                epoch,
                &extids,
            )?),
            Some(cfg) => Some(Wal::open(cfg.clone(), &state, epoch, &extids)?),
            None => None,
        };
        let pool = config.pool.unwrap_or_else(|| match config.pool_threads {
            0 => WorkerPool::with_default_threads(),
            t => WorkerPool::new(t),
        });
        let extids = Arc::new(extids);
        let shared = Arc::new(Shared {
            cell: Arc::new(SnapshotCell::with_epoch(state, epoch, Arc::clone(&extids))),
            cache: PlanCache::new(),
            metrics: Metrics::new(),
            queued: AtomicU64::new(0),
            tracer: config.tracer.unwrap_or_default(),
            trace_label: config.trace_label,
            pool,
            // the watermark starts at the first published epoch: after
            // recovery, pre-restart compactions are already folded in
            // and their remaps are gone, so slot-addressed submissions
            // based on pre-restart epochs must fail fast as stale
            oldest_supported: AtomicU64::new(epoch),
        });
        let (tx, rx) = mpsc::sync_channel(config.queue_capacity.max(1));
        let worker_shared = Arc::clone(&shared);
        let max_batch = config.max_batch.max(1);
        let compact_dead_ratio = config.compact_dead_ratio;
        let worker = std::thread::Builder::new()
            .name("kaskade-writer".into())
            .spawn(move || {
                writer_loop(
                    worker_shared,
                    rx,
                    max_batch,
                    compact_dead_ratio,
                    wal,
                    extids,
                )
            })
            .expect("spawn writer worker");
        Ok(Engine {
            shared,
            tx,
            worker: Some(worker),
        })
    }

    /// The currently published snapshot.
    pub fn snapshot(&self) -> Arc<EpochSnapshot> {
        self.shared.cell.load()
    }

    /// The epoch of the currently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.shared.cell.epoch()
    }

    /// A per-thread read handle with an epoch-validated snapshot cache
    /// (the lock-free hot path; see [`Reader`]).
    pub fn reader(&self) -> Reader {
        Reader::new(Arc::clone(&self.shared.cell))
    }

    /// Queues a delta (insertions and/or retractions) for the writer
    /// worker. Returns immediately; the delta becomes visible to
    /// readers when its batch is published (see [`Engine::flush`] to
    /// wait for that).
    ///
    /// Self-referential validity ([`kaskade_core::VRef::New`] indices)
    /// is checked here; references to base-graph vertices — including
    /// liveness under concurrent retraction — are checked by the worker
    /// at apply time, where the graph state is known exactly. A delta
    /// rejected there is dropped and counted in
    /// [`MetricsReport::deltas_rejected`] rather than crashing the
    /// engine. When the bounded queue (see
    /// [`EngineConfig::queue_capacity`]) is full, nothing is enqueued
    /// and [`SubmitError::Backpressure`] is returned.
    ///
    /// By default the delta's existing-vertex ids are taken to be in
    /// the id space of the **currently published** snapshot. A caller
    /// that resolved ids from a snapshot it loaded earlier should pass
    /// [`SubmitOpts::based_on`] with that snapshot's epoch, so a slot
    /// compaction publishing in between cannot misdirect the ids.
    pub fn submit(&self, delta: GraphDelta, opts: SubmitOpts) -> Result<(), SubmitError> {
        let based_on = opts.based_on.unwrap_or_else(|| self.shared.cell.epoch());
        let oldest = self.shared.oldest_supported.load(Ordering::Relaxed);
        if based_on < oldest && delta.has_slot_refs() {
            self.shared.metrics.record_stale(1);
            return Err(SubmitError::StaleEpoch {
                oldest_supported: oldest,
            });
        }
        enqueue_delta(
            &self.tx,
            &self.shared.queued,
            &self.shared.metrics,
            delta,
            based_on,
        )
    }

    /// Orders the writer to apply an externally computed compaction
    /// remap (the sharded coordinator's path; see
    /// [`kaskade_core::Snapshot::compact_with`]). Returns `false` when
    /// the engine is shutting down. Blocks while the queue is full —
    /// callers (the router) flush every batch, so the queue is
    /// near-empty in practice.
    pub(crate) fn submit_compact(&self, remap: Arc<IdRemap>) -> bool {
        self.tx.send(Msg::Compact(remap)).is_ok()
    }

    /// Queues a live catalog mutation — create or drop a materialized
    /// view — on the write path. The DDL is ordered with respect to
    /// deltas (everything submitted before it applies first), publishes
    /// as its own epoch with the refresh DAG rebuilt, logs a `KIND_DDL`
    /// WAL record when durability is on, and invalidates the plan
    /// cache: no plan carries forward across a catalog change. Returns
    /// `false` when the engine is shutting down. Blocks while the queue
    /// is full rather than failing — DDL is rare and must not be shed
    /// under write load.
    pub fn submit_ddl(&self, op: DdlOp) -> bool {
        self.tx.send(Msg::Ddl(op)).is_ok()
    }

    /// Waits until every previously submitted delta is applied and
    /// published; returns the epoch that made them visible. Unlike
    /// [`Engine::submit`], a full queue makes `flush` *wait* for room
    /// rather than fail. If the engine is already shut down, returns
    /// the last published epoch.
    pub fn flush(&self) -> u64 {
        let (ack_tx, ack_rx) = mpsc::channel();
        if self.tx.send(Msg::Flush(ack_tx)).is_err() {
            return self.shared.cell.epoch();
        }
        ack_rx.recv().unwrap_or_else(|_| self.shared.cell.epoch())
    }

    /// Deltas submitted but not yet published.
    pub fn queue_depth(&self) -> u64 {
        self.shared.queued.load(Ordering::Relaxed)
    }

    /// Plans (through the per-epoch plan cache) and executes `query`
    /// against the current snapshot.
    pub fn execute(&self, query: &Query) -> Result<Table, KaskadeError> {
        let snap = self.shared.cell.load();
        execute_at(&self.shared, &snap, query)
    }

    /// Like [`Engine::execute`], but against the reader's cached
    /// snapshot — the zero-lock steady-state read path.
    pub fn execute_with(&self, reader: &mut Reader, query: &Query) -> Result<Table, KaskadeError> {
        let snap = Arc::clone(reader.snapshot());
        execute_at(&self.shared, &snap, query)
    }

    /// A point-in-time metrics report (counters, latency quantiles,
    /// refresh lag, plan-cache hit rate, current epoch) — built by the
    /// one stitching constructor, [`Metrics::report_with`].
    pub fn metrics(&self) -> MetricsReport {
        self.shared.metrics.report_with(
            self.shared.cell.epoch(),
            &self.shared.cache,
            self.queue_depth() as usize,
        )
    }

    /// The engine's tracing subsystem (flight recorder + slow-query
    /// log). Always present; disabled unless a tracer was passed via
    /// [`EngineConfig::tracer`] or enabled at runtime.
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.shared.tracer
    }

    /// The persistent worker pool this engine's write path runs on
    /// (shared across all shards under a [`crate::ShardedEngine`]).
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.shared.pool
    }

    /// The live metrics block (for exposition endpoints that need raw
    /// histograms, not just the derived report).
    pub fn metrics_handle(&self) -> &Metrics {
        &self.shared.metrics
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // closing the channel is the shutdown signal; the worker drains
        // whatever is still queued, publishes, and exits
        let (tx, _) = mpsc::sync_channel(1);
        drop(std::mem::replace(&mut self.tx, tx));
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// Plans `query` via the shared per-epoch cache and executes it against
/// `snap`. The whole call touches no lock except the cache probe.
///
/// Read-path instrumentation: a `query` root span with
/// `plan_cache_lookup` / `plan` / `relational` children, and a
/// slow-query log entry (normalized AST + stage timings) when the total
/// crosses the tracer's threshold. With tracing off and no threshold
/// set, the added cost is two relaxed atomic loads.
fn execute_at(shared: &Shared, snap: &EpochSnapshot, query: &Query) -> Result<Table, KaskadeError> {
    let tracer = &shared.tracer;
    // `id(v) = <ext>` point lookups: resolve through the snapshot's
    // external-id table into a pinned single-slot anchor scan. The pin
    // is already the cheapest plan, so this path skips the view
    // rewriter and the plan cache (per-ext entries would only pollute
    // the per-epoch memo) — and it never feeds the advisor's miss log,
    // which would otherwise chase shapes no view can improve.
    if let Some((stripped, anchors)) = query.split_extid_anchors() {
        let start = Instant::now();
        let mut root = tracer.span(Stage::Query);
        root.set_epoch(snap.epoch);
        root.set_detail("anchored");
        return match crate::anchor::execute_anchored(
            snap.state.graph(),
            &snap.extids,
            &stripped,
            &anchors,
        ) {
            Ok(table) => {
                shared.metrics.record_query(start.elapsed());
                Ok(table)
            }
            Err(e) => {
                shared.metrics.record_query_error();
                Err(e)
            }
        };
    }
    // stage timings are needed by spans AND by the slow-query log, which
    // works with span tracing off
    let timing = tracer.is_enabled() || tracer.slow_query_threshold().is_some();
    let start = Instant::now();
    let mut root = tracer.span(Stage::Query);
    root.set_epoch(snap.epoch);
    let key = plan_key(query);
    let mut plan_time = std::time::Duration::ZERO;
    let planned = {
        let mut lookup = root.child(Stage::PlanCacheLookup);
        match shared.cache.get(snap.epoch, &key) {
            Some(plan) => {
                lookup.set_detail("hit");
                plan
            }
            None => {
                lookup.set_detail("miss");
                drop(lookup);
                let plan_span = root.child(Stage::Plan);
                let t0 = timing.then(Instant::now);
                let plan = Arc::new(snap.state.plan(query).map_err(KaskadeError::Inference)?);
                if let Some(t0) = t0 {
                    plan_time = t0.elapsed();
                }
                drop(plan_span);
                shared
                    .cache
                    .insert(snap.epoch, key.clone(), Arc::clone(&plan));
                plan
            }
        }
    };
    let rel = root.child(Stage::Relational);
    let t1 = timing.then(Instant::now);
    match snap.state.execute_planned(&planned) {
        Ok(table) => {
            let exec_time = t1.map(|t| t.elapsed()).unwrap_or_default();
            drop(rel);
            let total = start.elapsed();
            shared.metrics.record_query(total);
            // workload sensing for the advisor: attribute the query's
            // latency to the view that answered it, or log the
            // normalized shape of a query the planner could only send
            // to the base graph (a candidate view may be missing)
            match planned.view_id {
                Some(vid) => {
                    let name = snap
                        .state
                        .catalog()
                        .get_by_id(vid)
                        .map(|v| v.def.id())
                        .unwrap_or_else(|| vid.to_string());
                    shared.metrics.record_view_benefit(vid, &name, total);
                }
                None => shared.metrics.record_miss_shape(&key, query, total),
            }
            drop(root);
            if timing {
                tracer.observe_query(
                    total,
                    snap.epoch,
                    &key,
                    &format!("plan={plan_time:?} exec={exec_time:?}"),
                );
            }
            Ok(table)
        }
        Err(e) => {
            shared.metrics.record_query_error();
            Err(e)
        }
    }
}

/// `"label detail"` (or just `"detail"` for an unlabeled engine) — the
/// span-detail convention that attributes write-path spans to a shard.
fn trace_detail(label: &str, detail: std::fmt::Arguments<'_>) -> String {
    if label.is_empty() {
        detail.to_string()
    } else {
        format!("{label} {detail}")
    }
}

/// The single-writer worker: blocks on the queue, merges up to
/// `max_batch` queued deltas into one [`GraphDelta`], applies it with
/// incremental view maintenance, and publishes the successor snapshot.
/// After each publish it checks the slot-compaction policy
/// ([`EngineConfig::compact_dead_ratio`]): when the dead-slot share
/// crosses the threshold, the state compacts and publishes as its own
/// epoch — the fence — and the remap is recorded so queued deltas
/// built against older epochs rebase on arrival.
fn writer_loop(
    shared: Arc<Shared>,
    rx: mpsc::Receiver<Msg>,
    max_batch: usize,
    compact_dead_ratio: f64,
    mut wal: Option<Wal>,
    mut extids: Arc<ExternalIdTable>,
) {
    // the worker's working state always equals the published snapshot
    let mut state = shared.cell.load().state.clone();
    // nothing has published yet, so the cell still holds the start
    // epoch — the same staleness floor `Shared::oldest_supported` was
    // seeded with
    let mut remaps = RemapHistory::starting_at(shared.cell.epoch());
    let mut open = true;
    while open {
        let batch = collect_batch(&rx, state.graph(), max_batch, &remaps, &extids);
        open = batch.open;
        if batch.rejected > 0 {
            shared.metrics.record_rejected(batch.rejected);
        }
        if batch.stale > 0 {
            shared.metrics.record_stale(batch.stale);
        }
        if batch.batched > 0 {
            let tracer = &shared.tracer;
            let retractions = batch.delta.del_edges.len() + batch.delta.del_vertices.len();
            let mut batch_span = tracer.span(Stage::WriteBatch);
            if tracer.is_enabled() {
                batch_span.set_detail(trace_detail(
                    &shared.trace_label,
                    format_args!("batched={}", batch.batched),
                ));
                // how long the oldest delta sat queued before this
                // batch started — recorded retroactively, since the
                // enqueue side must stay span-free
                if let Some(oldest) = batch.oldest {
                    tracer.record(
                        Stage::QueueWait,
                        batch_span.id(),
                        oldest,
                        oldest.elapsed(),
                        shared.cell.epoch(),
                        shared.trace_label.clone(),
                    );
                }
            }
            let apply_start = Instant::now();
            let apply_span = batch_span.child(Stage::Apply);
            let apply_id = apply_span.id();
            let base_slots = state.graph().vertex_slots();
            let (next, report) = state.with_delta_report(
                &batch.delta,
                &RefreshOptions {
                    exec: Some(&*shared.pool),
                    ..RefreshOptions::default()
                },
            );
            drop(apply_span);
            state = next;
            // group commit: ONE durable record for the whole merged
            // batch, written (and fsynced) strictly before the epoch
            // it predicts becomes visible. An I/O failure here is
            // fail-stop — the writer dies rather than acknowledging a
            // batch that is not on disk, and submissions then return
            // `Closed`.
            if let Some(w) = wal.as_mut() {
                w.append_batch(shared.cell.epoch() + 1, &batch.delta)
                    .expect("WAL append failed; refusing to publish an unlogged batch");
            }
            // bind the batch's external ids to the slots the apply
            // appended (resolution already rejected rebindings), and
            // release the bindings of retracted slots — mirrored
            // exactly by WAL replay
            for (i, nv) in batch.delta.vertices.iter().enumerate() {
                if let Some(ext) = nv.ext {
                    Arc::make_mut(&mut extids)
                        .insert(ext, VertexId((base_slots + i) as u32))
                        .expect("resolution admitted a duplicate external id");
                }
            }
            for &v in &batch.delta.del_vertices {
                if extids.ext_of(v).is_some() {
                    Arc::make_mut(&mut extids).remove_slot(v);
                }
            }
            let mut publish_span = batch_span.child(Stage::Publish);
            let epoch = shared.cell.publish(state.clone(), Arc::clone(&extids));
            publish_span.set_epoch(epoch);
            drop(publish_span);
            batch_span.set_epoch(epoch);
            shared.cache.promote(epoch);
            let lag = batch.oldest.map(|t| t.elapsed()).unwrap_or_default();
            shared
                .metrics
                .record_refresh(batch.batched, apply_start.elapsed(), lag);
            shared
                .metrics
                .record_view_refresh(report.refreshed as u64, report.rematerialized as u64);
            // dimensional breakdown: one metrics row — and, when
            // tracing, one refresh_view child span — per catalog view
            let catalog = state.catalog();
            for stat in &report.per_view {
                let name = catalog
                    .get_by_id(stat.view)
                    .map(|v| v.def.id())
                    .unwrap_or_else(|| format!("view{}", stat.view.index()));
                shared.metrics.record_per_view(&name, stat);
                if tracer.is_enabled() {
                    tracer.record(
                        Stage::RefreshView,
                        apply_id,
                        apply_start,
                        stat.duration,
                        epoch,
                        trace_detail(
                            &shared.trace_label,
                            format_args!("{name} level={}", stat.level),
                        ),
                    );
                }
            }
            if retractions > 0 {
                shared.metrics.record_retractions(retractions);
            }
        }
        // a catalog mutation publishes as its own epoch, after the
        // deltas batched ahead of it and before anything queued behind
        if let Some(op) = &batch.ddl {
            let mut ddl_span = shared.tracer.span(Stage::Ddl);
            // durable strictly before visible, like batches: replay
            // re-runs apply_ddl at the same epoch position
            if let Some(w) = wal.as_mut() {
                w.append_ddl(shared.cell.epoch() + 1, op)
                    .expect("WAL append failed; refusing to publish an unlogged DDL");
            }
            state = state.apply_ddl(op);
            let epoch = shared.cell.publish(state.clone(), Arc::clone(&extids));
            // catalog changed: NO plan carry-forward across this epoch
            // (prune instead of promote). The new epoch starts empty so
            // every query replans against the new catalog; the previous
            // epoch's entries stay one epoch as grace for readers still
            // draining on the pre-DDL snapshot.
            shared.cache.prune_below(epoch);
            let detail = match op {
                DdlOp::CreateView(def) => {
                    shared.metrics.record_view_created();
                    format_args!("create {}", def.id()).to_string()
                }
                DdlOp::DropView(id) => {
                    shared.metrics.record_view_dropped();
                    format!("drop {id}")
                }
            };
            ddl_span.set_epoch(epoch);
            ddl_span.set_detail(trace_detail(&shared.trace_label, format_args!("{detail}")));
        }
        // one compaction per loop at most: a coordinator-ordered remap
        // (this engine is a shard of a ShardedEngine — the shared remap
        // keeps shard-local ids equal to global ids) takes precedence
        // over the engine's own dead-ratio policy
        let compaction = match batch.compact {
            Some(remap) => Some((state.compact_with(&remap), remap)),
            None if should_compact(state.graph(), compact_dead_ratio) => {
                let (next, remap) = state.compact();
                Some((next, Arc::new(remap)))
            }
            None => None,
        };
        if let Some((next, remap)) = compaction {
            let mut compact_span = shared.tracer.span(Stage::Compact);
            let before = slot_capacity(state.graph());
            // a bare epoch-tagged marker: replay re-runs the
            // deterministic compaction instead of logging the remap
            if let Some(w) = wal.as_mut() {
                w.append_compact(shared.cell.epoch() + 1)
                    .expect("WAL append failed; refusing to publish an unlogged compaction");
            }
            state = next;
            Arc::make_mut(&mut extids).remap(&remap);
            let epoch = shared.cell.publish(state.clone(), Arc::clone(&extids));
            shared.cache.promote(epoch);
            let reclaimed = before - slot_capacity(state.graph());
            shared.metrics.record_compaction(reclaimed);
            compact_span.set_epoch(epoch);
            compact_span.set_detail(trace_detail(
                &shared.trace_label,
                format_args!("reclaimed={reclaimed}"),
            ));
            // external ids survived the renumbering above: the table
            // followed the same remap the delta rebase path uses,
            // inside the same epoch publish
            remaps.record(epoch, remap);
            shared
                .oldest_supported
                .store(remaps.oldest_supported(), Ordering::Relaxed);
        }
        if let Some(w) = wal.as_mut() {
            if w.should_checkpoint() {
                w.checkpoint(&state, shared.cell.epoch(), &extids)
                    .expect("WAL checkpoint failed");
            }
        }
        if batch.batched + batch.rejected > 0 {
            shared
                .queued
                .fetch_sub((batch.batched + batch.rejected) as u64, Ordering::Relaxed);
        }
        for ack in batch.acks {
            let _ = ack.send(shared.cell.epoch());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaskade_core::{ConnectorDef, VRef, ViewDef};
    use kaskade_graph::{Graph, GraphBuilder, Schema, Value, VertexId};
    use kaskade_query::parse;

    fn lineage() -> Graph {
        let mut b = GraphBuilder::new();
        let j0 = b.add_vertex("Job");
        let f0 = b.add_vertex("File");
        let j1 = b.add_vertex("Job");
        b.add_edge(j0, f0, "WRITES_TO");
        b.add_edge(f0, j1, "IS_READ_BY");
        b.finish()
    }

    fn count_query() -> Query {
        parse(
            "SELECT COUNT(*) FROM (MATCH (a:Job)-[:WRITES_TO]->(f:File) \
             (f:File)-[:IS_READ_BY]->(b:Job) RETURN a AS A, b AS B)",
        )
        .unwrap()
    }

    #[test]
    fn submit_flush_advances_epoch_and_result() {
        let mut k = Kaskade::new(lineage(), Schema::provenance());
        k.materialize_view(ViewDef::Connector(ConnectorDef::k_hop("Job", "Job", 2)));
        let engine = Engine::from_kaskade(&k);
        let q = count_query();
        let before = engine.execute(&q).unwrap();
        assert_eq!(before.scalar().unwrap().as_int(), Some(1));
        assert_eq!(engine.epoch(), 0);

        let mut d = GraphDelta::new();
        let f = d.add_vertex("File", vec![]);
        let j = d.add_vertex("Job", vec![]);
        d.add_edge(
            VRef::Existing(VertexId(2)),
            f,
            "WRITES_TO",
            vec![("ts".into(), Value::Int(7))],
        );
        d.add_edge(f, j, "IS_READ_BY", vec![("ts".into(), Value::Int(8))]);
        engine.submit(d, SubmitOpts::default()).unwrap();
        let epoch = engine.flush();
        assert!(epoch >= 1);
        assert_eq!(engine.queue_depth(), 0);
        let after = engine.execute(&q).unwrap();
        assert_eq!(after.scalar().unwrap().as_int(), Some(2));
        // the refreshed connector view also reflects the new pair
        let snap = engine.snapshot();
        let view = snap.state.catalog().get("connector:JOB_TO_JOB_2_HOP");
        assert_eq!(view.unwrap().graph.edge_count(), 2);
    }

    #[test]
    fn repeated_queries_hit_the_plan_cache() {
        let engine = Engine::new(Snapshot::new(lineage(), Schema::provenance()));
        let q = count_query();
        for _ in 0..5 {
            engine.execute(&q).unwrap();
        }
        let report = engine.metrics();
        assert_eq!(report.queries, 5);
        assert_eq!(report.plan_cache_misses, 1);
        assert_eq!(report.plan_cache_hits, 4);
        assert!(report.plan_cache_hit_rate() > 0.7);
    }

    #[test]
    fn reader_handle_serves_without_flush() {
        let engine = Engine::new(Snapshot::new(lineage(), Schema::provenance()));
        let mut reader = engine.reader();
        let q = count_query();
        let t = engine.execute_with(&mut reader, &q).unwrap();
        assert_eq!(t.scalar().unwrap().as_int(), Some(1));
        // submit + flush, then the same reader observes the new epoch
        let mut d = GraphDelta::new();
        d.add_vertex("Job", vec![]);
        engine.submit(d, SubmitOpts::default()).unwrap();
        engine.flush();
        assert_eq!(reader.snapshot().epoch, engine.epoch());
    }

    #[test]
    fn malformed_deltas_are_rejected_not_fatal() {
        let engine = Engine::new(Snapshot::new(lineage(), Schema::provenance()));
        // self-referentially broken: refused synchronously
        let mut dangling_new = GraphDelta::new();
        dangling_new.add_edge(VRef::New(0), VRef::New(1), "WRITES_TO", vec![]);
        assert!(matches!(
            engine.submit(dangling_new, SubmitOpts::default()),
            Err(SubmitError::Invalid(_))
        ));
        // dangling base reference: only detectable at apply time, so it
        // is dropped by the worker and counted — never a panic
        let mut dangling_existing = GraphDelta::new();
        let v = dangling_existing.add_vertex("File", vec![]);
        dangling_existing.add_edge(VRef::Existing(VertexId(999)), v, "WRITES_TO", vec![]);
        engine
            .submit(dangling_existing, SubmitOpts::default())
            .unwrap();
        engine.flush();
        assert_eq!(engine.metrics().deltas_rejected, 1);
        assert_eq!(engine.queue_depth(), 0);
        // the engine still serves reads and accepts valid writes
        let mut ok = GraphDelta::new();
        ok.add_vertex("Job", vec![]);
        engine.submit(ok, SubmitOpts::default()).unwrap();
        engine.flush();
        assert_eq!(engine.snapshot().state.graph().vertex_count(), 4);
        assert!(engine.execute(&count_query()).is_ok());
    }

    #[test]
    fn retractions_flow_through_the_engine() {
        let mut k = Kaskade::new(lineage(), Schema::provenance());
        k.materialize_view(ViewDef::Connector(ConnectorDef::k_hop("Job", "Job", 2)));
        let engine = Engine::from_kaskade(&k);
        let q = count_query();
        assert_eq!(
            engine.execute(&q).unwrap().scalar().unwrap().as_int(),
            Some(1)
        );

        // retract the read edge: the blast-radius pair disappears and
        // the connector view is maintained to match
        let mut d = GraphDelta::new();
        d.del_edge(
            VRef::Existing(VertexId(1)),
            VRef::Existing(VertexId(2)),
            "IS_READ_BY",
        );
        engine.submit(d, SubmitOpts::default()).unwrap();
        engine.flush();
        assert_eq!(
            engine.execute(&q).unwrap().scalar().unwrap().as_int(),
            Some(0)
        );
        let snap = engine.snapshot();
        let view = snap.state.catalog().get("connector:JOB_TO_JOB_2_HOP");
        assert_eq!(view.unwrap().graph.edge_count(), 0);
        assert_eq!(snap.state.graph().edge_count(), 1);
        assert_eq!(engine.metrics().retractions_applied, 1);
        assert!(crate::drive::snapshot_is_consistent(&snap.state));
    }

    #[test]
    fn insert_onto_vertex_retracted_earlier_in_batch_is_rejected() {
        // sequential semantics: after delta 1 retracts f0, delta 2's
        // insert onto f0 could never apply — the batched path must
        // reject it the same way instead of cascading it away
        let engine = Engine::with_config(
            Snapshot::new(lineage(), Schema::provenance()),
            EngineConfig {
                max_batch: 16,
                ..EngineConfig::default()
            },
        );
        let mut d1 = GraphDelta::new();
        d1.del_vertex(VertexId(1)); // f0
        let mut d2 = GraphDelta::new();
        let j = d2.add_vertex("Job", vec![]);
        d2.add_edge(VRef::Existing(VertexId(1)), j, "IS_READ_BY", vec![]);
        engine.submit(d1, SubmitOpts::default()).unwrap();
        engine.submit(d2, SubmitOpts::default()).unwrap();
        engine.flush();
        let report = engine.metrics();
        assert_eq!(report.deltas_rejected, 1, "{report:?}");
        // only d1 landed: f0 and its two edges are gone, no new job
        let snap = engine.snapshot();
        assert_eq!(snap.state.graph().vertex_count(), 2);
        assert_eq!(snap.state.graph().edge_count(), 0);
    }

    #[test]
    fn full_queue_reports_backpressure() {
        let g = {
            // a graph big enough that each publish takes measurable work
            use kaskade_datasets::{generate_provenance, ProvenanceConfig};
            generate_provenance(&ProvenanceConfig::tiny(41).core_only())
        };
        let engine = Engine::with_config(
            Snapshot::new(g, Schema::provenance()),
            EngineConfig {
                max_batch: 1,
                queue_capacity: 2,
                ..EngineConfig::default()
            },
        );
        // submit far faster than single-delta batches can drain: the
        // bounded queue must refuse at least one submission
        let mut saw_backpressure = false;
        for _ in 0..50_000 {
            let mut d = GraphDelta::new();
            d.add_vertex("File", vec![]);
            match engine.submit(d, SubmitOpts::default()) {
                Ok(()) => {}
                Err(SubmitError::Backpressure) => {
                    saw_backpressure = true;
                    break;
                }
                Err(e) => panic!("unexpected submit error: {e}"),
            }
        }
        assert!(saw_backpressure, "bounded queue never pushed back");
        assert!(engine.metrics().deltas_backpressured >= 1);
        // the engine keeps serving: flush drains and accepts new work
        engine.flush();
        let mut d = GraphDelta::new();
        d.add_vertex("Job", vec![]);
        engine.submit(d, SubmitOpts::default()).unwrap();
        engine.flush();
        assert_eq!(engine.queue_depth(), 0);
    }

    #[test]
    fn churn_turnover_triggers_compaction_and_bounds_slots() {
        // a chain graph churned with delete-then-reinsert turnover at
        // constant live size: without compaction slot capacity grows
        // one dead slot per round, forever
        let mut b = GraphBuilder::new();
        let vs: Vec<VertexId> = (0..30).map(|_| b.add_vertex("Job")).collect();
        for w in vs.windows(2) {
            b.add_edge(w[0], w[1], "SPAWNS");
        }
        let g = b.finish();
        let live = g.vertex_count() + g.edge_count();
        let engine = Engine::new(Snapshot::new(g, Schema::provenance()));
        for round in 0..200u64 {
            let snap = engine.snapshot();
            let g = snap.state.graph();
            let e = g.edges().next().unwrap();
            let (s, d) = (g.edge_src(e), g.edge_dst(e));
            let mut delta = GraphDelta::new();
            delta.del_edge(VRef::Existing(s), VRef::Existing(d), "SPAWNS");
            delta.add_edge(
                VRef::Existing(s),
                VRef::Existing(d),
                "SPAWNS",
                vec![("ts".into(), Value::Int(round as i64))],
            );
            engine
                .submit(delta, SubmitOpts::based_on(snap.epoch))
                .unwrap();
            engine.flush();
        }
        let report = engine.metrics();
        assert!(report.compactions_run >= 1, "{report:?}");
        assert!(report.slots_reclaimed > 0, "{report:?}");
        assert_eq!(report.deltas_rejected, 0, "{report:?}");
        let snap = engine.snapshot();
        let g = snap.state.graph();
        // live size never changed; capacity is bounded by the policy
        assert_eq!(g.vertex_count() + g.edge_count(), live);
        let capacity = g.vertex_slots() + g.edge_slots();
        assert!(
            capacity <= 2 * live,
            "capacity {capacity} exceeds 2x live {live}"
        );
        assert!(crate::drive::snapshot_is_consistent(&snap.state));
    }

    #[test]
    fn stale_deltas_rebase_across_the_compaction_fence() {
        // 10 dead File slots around two live Jobs: the first publish
        // triggers compaction (dead ratio 10/12), renumbering the
        // second job from id 11 to id 1
        let mut b = GraphBuilder::new();
        b.add_vertex("Job");
        let files: Vec<VertexId> = (0..10).map(|_| b.add_vertex("File")).collect();
        let j1 = b.add_vertex("Job");
        b.set_vertex_prop(j1, "name", Value::Str("sink".into()));
        let g = b.finish().remove_vertices(files);
        let engine = Engine::new(Snapshot::new(g, Schema::provenance()));
        let snap0 = engine.snapshot();
        assert_eq!(snap0.epoch, 0);

        // force the fence: an empty-ish write publishes, then compacts
        let mut warm = GraphDelta::new();
        warm.add_vertex("Job", vec![]);
        engine
            .submit(warm, SubmitOpts::based_on(snap0.epoch))
            .unwrap();
        engine.flush();
        let report = engine.metrics();
        assert_eq!(report.compactions_run, 1, "{report:?}");
        assert_eq!(report.slots_reclaimed, 10);
        let compacted = engine.snapshot();
        assert_eq!(compacted.state.graph().vertex_slots(), 3);

        // a delta built against the EPOCH-0 snapshot, naming j1 by its
        // old id 11: the writer must rebase it through the remap, not
        // reject it or alias it onto a reused slot
        let mut stale = GraphDelta::new();
        let f = stale.add_vertex("File", vec![]);
        stale.add_edge(VRef::Existing(j1), f, "WRITES_TO", vec![]);
        engine
            .submit(stale, SubmitOpts::based_on(snap0.epoch))
            .unwrap();
        engine.flush();
        let snap = engine.snapshot();
        let g = snap.state.graph();
        assert_eq!(engine.metrics().deltas_rejected, 0);
        assert_eq!(g.edge_count(), 1);
        let e = g.edges().next().unwrap();
        assert_eq!(
            g.vertex_prop(g.edge_src(e), "name"),
            Some(&Value::Str("sink".into())),
            "the rebased edge hangs off the vertex the client meant"
        );
    }

    #[test]
    fn remap_history_rejects_deltas_older_than_retained_remaps() {
        use kaskade_graph::Graph;
        fn remap_of(g: &Graph) -> Arc<kaskade_graph::IdRemap> {
            Arc::new(g.compact().1)
        }
        let mut b = kaskade_graph::GraphBuilder::new();
        let v = b.add_vertex("Job");
        b.add_vertex("Job");
        let g = b.finish().remove_vertices([v]);
        let mut history = RemapHistory::starting_at(0);
        for epoch in 1..=(MAX_REMAP_HISTORY as u64) {
            history.record(epoch, remap_of(&g));
        }
        // everything still retained: a delta based on epoch 0 rebases
        let mut d = GraphDelta::new();
        d.del_vertex(kaskade_graph::VertexId(1));
        assert!(history.rebase(&mut d.clone(), 0).is_ok());
        // one more compaction evicts the oldest remap; epoch-0 deltas
        // can no longer be rebased and must be rejected, never aliased
        history.record(MAX_REMAP_HISTORY as u64 + 1, remap_of(&g));
        assert!(history.rebase(&mut d.clone(), 0).is_err());
        assert!(history.rebase(&mut d, 1).is_ok());
    }

    #[test]
    fn remap_history_seeded_with_start_epoch_rejects_prior_slots() {
        // the post-recovery shape: no retained remaps, but everything
        // before the start epoch is unrebasable for slot-addressed
        // deltas — external-id deltas stay epoch-free
        let history = RemapHistory::starting_at(5);
        let mut slot = GraphDelta::new();
        slot.del_vertex(kaskade_graph::VertexId(0));
        assert!(history.rebase(&mut slot.clone(), 4).is_err());
        assert!(history.rebase(&mut slot, 5).is_ok());
        let mut ext = GraphDelta::new();
        ext.del_vertex_ext(9);
        assert!(history.rebase(&mut ext, 0).is_ok());
        assert_eq!(history.oldest_supported(), 5);
    }

    #[test]
    fn drop_drains_pending_writes() {
        let state = Snapshot::new(lineage(), Schema::provenance());
        let engine = Engine::new(state);
        for _ in 0..10 {
            let mut d = GraphDelta::new();
            d.add_vertex("File", vec![]);
            engine.submit(d, SubmitOpts::default()).unwrap();
        }
        let cell = Arc::clone(&engine.shared.cell);
        drop(engine);
        // all 10 vertices landed (possibly across several batches)
        let snap = cell.load();
        assert_eq!(snap.state.graph().vertex_count(), 13);
    }
}
