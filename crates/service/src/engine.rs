//! The serving engine: concurrent readers over epoch-published
//! snapshots, a single background writer applying delta batches.
//!
//! ```text
//!            submit(delta)                 publish(epoch+1)
//!  clients ───────────────► queue ─► writer worker ─► SnapshotCell
//!                                   (merge batch,         │ load
//!                                    with_delta,          ▼
//!                                    refresh views)   Arc<EpochSnapshot>
//!  readers ◄──────────────────────────────────────────────┘
//!           execute(): plan-cache lookup → execute_planned
//! ```
//!
//! Readers never block writers and writers never block readers: queries
//! run against an immutable `Arc<EpochSnapshot>`, and the writer builds
//! the successor state off to the side before atomically publishing it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Instant;

use kaskade_core::{DeltaError, GraphDelta, Kaskade, KaskadeError, Snapshot, VRef};
use kaskade_query::{Query, Table};

use crate::metrics::{Metrics, MetricsReport};
use crate::plan_cache::{plan_key, PlanCache};
use crate::snapshot::{EpochSnapshot, Reader, SnapshotCell};

/// Tuning knobs of the [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Maximum number of queued deltas merged into one apply+publish
    /// cycle. Larger batches amortize view refresh and stats
    /// recomputation; smaller batches reduce refresh lag.
    pub max_batch: usize,
    /// Capacity of the delta queue. When the writer worker falls this
    /// far behind, [`Engine::submit`] fails fast with
    /// [`SubmitError::Backpressure`] instead of buffering without
    /// bound; rejected submissions are counted in
    /// [`MetricsReport::deltas_backpressured`].
    pub queue_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_batch: 64,
            queue_capacity: 1024,
        }
    }
}

/// A write-path message: a queued delta (with its enqueue time, for
/// refresh-lag accounting) or a flush acknowledgement request. Shared
/// by the single engine's writer worker and the sharded router.
pub(crate) enum Msg {
    Delta(Box<GraphDelta>, Instant),
    Flush(mpsc::Sender<u64>),
}

/// Enqueues a delta on a bounded write queue with the engine's submit
/// contract: self-referential validation up front, a conservative
/// queued counter, and typed `Backpressure`/`Closed` errors with
/// nothing enqueued on failure. Shared by [`Engine::submit`] and the
/// sharded engine's submit.
pub(crate) fn enqueue_delta(
    tx: &mpsc::SyncSender<Msg>,
    queued: &AtomicU64,
    metrics: &Metrics,
    delta: GraphDelta,
) -> Result<(), SubmitError> {
    // usize::MAX vertex bound: only the New-index checks can fail
    delta.validate(usize::MAX).map_err(SubmitError::Invalid)?;
    // increment BEFORE sending so the counter stays conservative:
    // the worker may consume and decrement the instant send lands
    queued.fetch_add(1, Ordering::Relaxed);
    match tx.try_send(Msg::Delta(Box::new(delta), Instant::now())) {
        Ok(()) => Ok(()),
        Err(mpsc::TrySendError::Full(_)) => {
            queued.fetch_sub(1, Ordering::Relaxed);
            metrics.record_backpressure();
            Err(SubmitError::Backpressure)
        }
        Err(mpsc::TrySendError::Disconnected(_)) => {
            queued.fetch_sub(1, Ordering::Relaxed);
            Err(SubmitError::Closed)
        }
    }
}

/// One assembled write batch (see [`collect_batch`]).
pub(crate) struct Batch {
    /// The merged batch delta (empty when `batched == 0`).
    pub delta: GraphDelta,
    /// Deltas merged into `delta`.
    pub batched: usize,
    /// Deltas dropped as invalid at apply time.
    pub rejected: usize,
    /// Enqueue time of the oldest delta in the batch.
    pub oldest: Option<Instant>,
    /// Flush acknowledgements collected while assembling.
    pub acks: Vec<mpsc::Sender<u64>>,
    /// Whether the queue is still open (false = shutdown signalled).
    pub open: bool,
}

/// Blocks for the next message, then drains the queue into one merged
/// batch of up to `max_batch` deltas, validating each against `graph`
/// (the worker's current state) plus the batch's own pending effects.
/// This is THE accept/reject decision point of the write path — the
/// single engine's writer loop and the sharded router both use it, so
/// a delta is dropped by one iff it is dropped by the other.
pub(crate) fn collect_batch(
    rx: &mpsc::Receiver<Msg>,
    graph: &kaskade_graph::Graph,
    max_batch: usize,
) -> Batch {
    let mut batch = Batch {
        delta: GraphDelta::new(),
        batched: 0,
        rejected: 0,
        oldest: None,
        acks: Vec::new(),
        open: true,
    };
    let mut pending = match rx.recv() {
        Ok(msg) => Some(msg),
        Err(_) => {
            batch.open = false;
            None
        }
    };
    loop {
        match pending.take() {
            Some(Msg::Delta(delta, enqueued)) => {
                // exact validity check at the only point where the
                // apply-time graph state is known: base graph (slots
                // and liveness) plus the vertices earlier deltas of
                // this batch add (sequential-apply equivalence of
                // merge). A bad delta — dangling or tombstoned
                // references — is dropped and counted, never applied;
                // it must not kill the worker and with it the engine.
                let pending_vertices = batch.delta.vertices.len();
                // sequential equivalence also demands rejecting an
                // insert onto a vertex an earlier delta of this batch
                // retracts: applied one at a time, that insert would
                // see the vertex already dead
                let onto_batch_retracted = delta.edges.iter().any(|e| {
                    [e.src, e.dst].iter().any(
                        |r| matches!(r, VRef::Existing(v) if batch.delta.del_vertices.contains(v)),
                    )
                });
                if onto_batch_retracted || delta.validate_against(graph, pending_vertices).is_err()
                {
                    batch.rejected += 1;
                } else {
                    batch.delta.merge(&delta);
                    batch.batched += 1;
                    batch.oldest.get_or_insert(enqueued);
                    if batch.batched >= max_batch {
                        break;
                    }
                }
            }
            Some(Msg::Flush(ack)) => batch.acks.push(ack),
            None => {}
        }
        match rx.try_recv() {
            Ok(msg) => pending = Some(msg),
            Err(mpsc::TryRecvError::Empty) => break,
            Err(mpsc::TryRecvError::Disconnected) => {
                batch.open = false;
                break;
            }
        }
    }
    batch
}

/// Why [`Engine::submit`] refused a delta.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The delta is structurally broken (a [`kaskade_core::VRef::New`]
    /// index past its own vertex list, or a retraction referencing an
    /// uninserted new vertex); it could never apply.
    Invalid(DeltaError),
    /// The delta queue is full (the writer worker is behind). The
    /// client should retry later or shed load; nothing was enqueued.
    Backpressure,
    /// The writer worker is gone (the engine is shutting down).
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Invalid(e) => write!(f, "invalid delta: {e}"),
            SubmitError::Backpressure => write!(f, "delta queue is full (backpressure)"),
            SubmitError::Closed => write!(f, "engine is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// State shared between the engine handle, its readers, and the writer
/// worker.
#[derive(Debug)]
struct Shared {
    cell: Arc<SnapshotCell>,
    cache: PlanCache,
    metrics: Metrics,
    queued: AtomicU64,
}

/// The concurrent serving runtime.
///
/// Cheap to share (`Engine` is `Sync`; wrap it in an `Arc` or use
/// scoped threads). Reads go through [`Engine::execute`] or a
/// per-thread [`Engine::reader`]; writes through [`Engine::submit`].
/// Dropping the engine shuts the writer worker down after it drains
/// the queue.
#[derive(Debug)]
pub struct Engine {
    shared: Arc<Shared>,
    tx: mpsc::SyncSender<Msg>,
    worker: Option<JoinHandle<()>>,
}

impl Engine {
    /// Serves the given state (epoch 0) with default tuning.
    pub fn new(state: Snapshot) -> Self {
        Self::with_config(state, EngineConfig::default())
    }

    /// Serves the current state of a [`Kaskade`] instance (the instance
    /// itself is left untouched; the engine evolves its own copy).
    pub fn from_kaskade(kaskade: &Kaskade) -> Self {
        Self::new(kaskade.snapshot())
    }

    /// Serves the given state (epoch 0) with explicit tuning.
    pub fn with_config(state: Snapshot, config: EngineConfig) -> Self {
        let shared = Arc::new(Shared {
            cell: Arc::new(SnapshotCell::new(state)),
            cache: PlanCache::new(),
            metrics: Metrics::new(),
            queued: AtomicU64::new(0),
        });
        let (tx, rx) = mpsc::sync_channel(config.queue_capacity.max(1));
        let worker_shared = Arc::clone(&shared);
        let max_batch = config.max_batch.max(1);
        let worker = std::thread::Builder::new()
            .name("kaskade-writer".into())
            .spawn(move || writer_loop(worker_shared, rx, max_batch))
            .expect("spawn writer worker");
        Engine {
            shared,
            tx,
            worker: Some(worker),
        }
    }

    /// The currently published snapshot.
    pub fn snapshot(&self) -> Arc<EpochSnapshot> {
        self.shared.cell.load()
    }

    /// The epoch of the currently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.shared.cell.epoch()
    }

    /// A per-thread read handle with an epoch-validated snapshot cache
    /// (the lock-free hot path; see [`Reader`]).
    pub fn reader(&self) -> Reader {
        Reader::new(Arc::clone(&self.shared.cell))
    }

    /// Queues a delta (insertions and/or retractions) for the writer
    /// worker. Returns immediately; the delta becomes visible to
    /// readers when its batch is published (see [`Engine::flush`] to
    /// wait for that).
    ///
    /// Self-referential validity ([`kaskade_core::VRef::New`] indices)
    /// is checked here; references to base-graph vertices — including
    /// liveness under concurrent retraction — are checked by the worker
    /// at apply time, where the graph state is known exactly. A delta
    /// rejected there is dropped and counted in
    /// [`MetricsReport::deltas_rejected`] rather than crashing the
    /// engine. When the bounded queue (see
    /// [`EngineConfig::queue_capacity`]) is full, nothing is enqueued
    /// and [`SubmitError::Backpressure`] is returned.
    pub fn submit(&self, delta: GraphDelta) -> Result<(), SubmitError> {
        enqueue_delta(&self.tx, &self.shared.queued, &self.shared.metrics, delta)
    }

    /// Waits until every previously submitted delta is applied and
    /// published; returns the epoch that made them visible. Unlike
    /// [`Engine::submit`], a full queue makes `flush` *wait* for room
    /// rather than fail. If the engine is already shut down, returns
    /// the last published epoch.
    pub fn flush(&self) -> u64 {
        let (ack_tx, ack_rx) = mpsc::channel();
        if self.tx.send(Msg::Flush(ack_tx)).is_err() {
            return self.shared.cell.epoch();
        }
        ack_rx.recv().unwrap_or_else(|_| self.shared.cell.epoch())
    }

    /// Deltas submitted but not yet published.
    pub fn queue_depth(&self) -> u64 {
        self.shared.queued.load(Ordering::Relaxed)
    }

    /// Plans (through the per-epoch plan cache) and executes `query`
    /// against the current snapshot.
    pub fn execute(&self, query: &Query) -> Result<Table, KaskadeError> {
        let snap = self.shared.cell.load();
        execute_at(&self.shared, &snap, query)
    }

    /// Like [`Engine::execute`], but against the reader's cached
    /// snapshot — the zero-lock steady-state read path.
    pub fn execute_with(&self, reader: &mut Reader, query: &Query) -> Result<Table, KaskadeError> {
        let snap = Arc::clone(reader.snapshot());
        execute_at(&self.shared, &snap, query)
    }

    /// A point-in-time metrics report (counters, latency quantiles,
    /// refresh lag, plan-cache hit rate, current epoch).
    pub fn metrics(&self) -> MetricsReport {
        let mut r = self.shared.metrics.report();
        r.epoch = self.shared.cell.epoch();
        r.plan_cache_hits = self.shared.cache.hits();
        r.plan_cache_misses = self.shared.cache.misses();
        r
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // closing the channel is the shutdown signal; the worker drains
        // whatever is still queued, publishes, and exits
        let (tx, _) = mpsc::sync_channel(1);
        drop(std::mem::replace(&mut self.tx, tx));
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// Plans `query` via the shared per-epoch cache and executes it against
/// `snap`. The whole call touches no lock except the cache probe.
fn execute_at(shared: &Shared, snap: &EpochSnapshot, query: &Query) -> Result<Table, KaskadeError> {
    let start = Instant::now();
    let key = plan_key(query);
    let planned = match shared.cache.get(snap.epoch, &key) {
        Some(plan) => plan,
        None => {
            let plan = Arc::new(snap.state.plan(query).map_err(KaskadeError::Inference)?);
            shared.cache.insert(snap.epoch, key, Arc::clone(&plan));
            plan
        }
    };
    match snap.state.execute_planned(&planned) {
        Ok(table) => {
            shared.metrics.record_query(start.elapsed());
            Ok(table)
        }
        Err(e) => {
            shared.metrics.record_query_error();
            Err(e)
        }
    }
}

/// The single-writer worker: blocks on the queue, merges up to
/// `max_batch` queued deltas into one [`GraphDelta`], applies it with
/// incremental view maintenance, and publishes the successor snapshot.
fn writer_loop(shared: Arc<Shared>, rx: mpsc::Receiver<Msg>, max_batch: usize) {
    // the worker's working state always equals the published snapshot
    let mut state = shared.cell.load().state.clone();
    let mut open = true;
    while open {
        let batch = collect_batch(&rx, state.graph(), max_batch);
        open = batch.open;
        if batch.rejected > 0 {
            shared.metrics.record_rejected(batch.rejected);
        }
        if batch.batched > 0 {
            let retractions = batch.delta.del_edges.len() + batch.delta.del_vertices.len();
            let apply_start = Instant::now();
            state = state.with_delta(&batch.delta);
            let epoch = shared.cell.publish(state.clone());
            shared.cache.promote(epoch);
            let lag = batch.oldest.map(|t| t.elapsed()).unwrap_or_default();
            shared
                .metrics
                .record_refresh(batch.batched, apply_start.elapsed(), lag);
            if retractions > 0 {
                shared.metrics.record_retractions(retractions);
            }
        }
        if batch.batched + batch.rejected > 0 {
            shared
                .queued
                .fetch_sub((batch.batched + batch.rejected) as u64, Ordering::Relaxed);
        }
        for ack in batch.acks {
            let _ = ack.send(shared.cell.epoch());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaskade_core::{ConnectorDef, VRef, ViewDef};
    use kaskade_graph::{Graph, GraphBuilder, Schema, Value, VertexId};
    use kaskade_query::parse;

    fn lineage() -> Graph {
        let mut b = GraphBuilder::new();
        let j0 = b.add_vertex("Job");
        let f0 = b.add_vertex("File");
        let j1 = b.add_vertex("Job");
        b.add_edge(j0, f0, "WRITES_TO");
        b.add_edge(f0, j1, "IS_READ_BY");
        b.finish()
    }

    fn count_query() -> Query {
        parse(
            "SELECT COUNT(*) FROM (MATCH (a:Job)-[:WRITES_TO]->(f:File) \
             (f:File)-[:IS_READ_BY]->(b:Job) RETURN a AS A, b AS B)",
        )
        .unwrap()
    }

    #[test]
    fn submit_flush_advances_epoch_and_result() {
        let mut k = Kaskade::new(lineage(), Schema::provenance());
        k.materialize_view(ViewDef::Connector(ConnectorDef::k_hop("Job", "Job", 2)));
        let engine = Engine::from_kaskade(&k);
        let q = count_query();
        let before = engine.execute(&q).unwrap();
        assert_eq!(before.scalar().unwrap().as_int(), Some(1));
        assert_eq!(engine.epoch(), 0);

        let mut d = GraphDelta::new();
        let f = d.add_vertex("File", vec![]);
        let j = d.add_vertex("Job", vec![]);
        d.add_edge(
            VRef::Existing(VertexId(2)),
            f,
            "WRITES_TO",
            vec![("ts".into(), Value::Int(7))],
        );
        d.add_edge(f, j, "IS_READ_BY", vec![("ts".into(), Value::Int(8))]);
        engine.submit(d).unwrap();
        let epoch = engine.flush();
        assert!(epoch >= 1);
        assert_eq!(engine.queue_depth(), 0);
        let after = engine.execute(&q).unwrap();
        assert_eq!(after.scalar().unwrap().as_int(), Some(2));
        // the refreshed connector view also reflects the new pair
        let snap = engine.snapshot();
        let view = snap.state.catalog().get("connector:JOB_TO_JOB_2_HOP");
        assert_eq!(view.unwrap().graph.edge_count(), 2);
    }

    #[test]
    fn repeated_queries_hit_the_plan_cache() {
        let engine = Engine::new(Snapshot::new(lineage(), Schema::provenance()));
        let q = count_query();
        for _ in 0..5 {
            engine.execute(&q).unwrap();
        }
        let report = engine.metrics();
        assert_eq!(report.queries, 5);
        assert_eq!(report.plan_cache_misses, 1);
        assert_eq!(report.plan_cache_hits, 4);
        assert!(report.plan_cache_hit_rate() > 0.7);
    }

    #[test]
    fn reader_handle_serves_without_flush() {
        let engine = Engine::new(Snapshot::new(lineage(), Schema::provenance()));
        let mut reader = engine.reader();
        let q = count_query();
        let t = engine.execute_with(&mut reader, &q).unwrap();
        assert_eq!(t.scalar().unwrap().as_int(), Some(1));
        // submit + flush, then the same reader observes the new epoch
        let mut d = GraphDelta::new();
        d.add_vertex("Job", vec![]);
        engine.submit(d).unwrap();
        engine.flush();
        assert_eq!(reader.snapshot().epoch, engine.epoch());
    }

    #[test]
    fn malformed_deltas_are_rejected_not_fatal() {
        let engine = Engine::new(Snapshot::new(lineage(), Schema::provenance()));
        // self-referentially broken: refused synchronously
        let mut dangling_new = GraphDelta::new();
        dangling_new.add_edge(VRef::New(0), VRef::New(1), "WRITES_TO", vec![]);
        assert!(matches!(
            engine.submit(dangling_new),
            Err(SubmitError::Invalid(_))
        ));
        // dangling base reference: only detectable at apply time, so it
        // is dropped by the worker and counted — never a panic
        let mut dangling_existing = GraphDelta::new();
        let v = dangling_existing.add_vertex("File", vec![]);
        dangling_existing.add_edge(VRef::Existing(VertexId(999)), v, "WRITES_TO", vec![]);
        engine.submit(dangling_existing).unwrap();
        engine.flush();
        assert_eq!(engine.metrics().deltas_rejected, 1);
        assert_eq!(engine.queue_depth(), 0);
        // the engine still serves reads and accepts valid writes
        let mut ok = GraphDelta::new();
        ok.add_vertex("Job", vec![]);
        engine.submit(ok).unwrap();
        engine.flush();
        assert_eq!(engine.snapshot().state.graph().vertex_count(), 4);
        assert!(engine.execute(&count_query()).is_ok());
    }

    #[test]
    fn retractions_flow_through_the_engine() {
        let mut k = Kaskade::new(lineage(), Schema::provenance());
        k.materialize_view(ViewDef::Connector(ConnectorDef::k_hop("Job", "Job", 2)));
        let engine = Engine::from_kaskade(&k);
        let q = count_query();
        assert_eq!(
            engine.execute(&q).unwrap().scalar().unwrap().as_int(),
            Some(1)
        );

        // retract the read edge: the blast-radius pair disappears and
        // the connector view is maintained to match
        let mut d = GraphDelta::new();
        d.del_edge(
            VRef::Existing(VertexId(1)),
            VRef::Existing(VertexId(2)),
            "IS_READ_BY",
        );
        engine.submit(d).unwrap();
        engine.flush();
        assert_eq!(
            engine.execute(&q).unwrap().scalar().unwrap().as_int(),
            Some(0)
        );
        let snap = engine.snapshot();
        let view = snap.state.catalog().get("connector:JOB_TO_JOB_2_HOP");
        assert_eq!(view.unwrap().graph.edge_count(), 0);
        assert_eq!(snap.state.graph().edge_count(), 1);
        assert_eq!(engine.metrics().retractions_applied, 1);
        assert!(crate::drive::snapshot_is_consistent(&snap.state));
    }

    #[test]
    fn insert_onto_vertex_retracted_earlier_in_batch_is_rejected() {
        // sequential semantics: after delta 1 retracts f0, delta 2's
        // insert onto f0 could never apply — the batched path must
        // reject it the same way instead of cascading it away
        let engine = Engine::with_config(
            Snapshot::new(lineage(), Schema::provenance()),
            EngineConfig {
                max_batch: 16,
                ..EngineConfig::default()
            },
        );
        let mut d1 = GraphDelta::new();
        d1.del_vertex(VertexId(1)); // f0
        let mut d2 = GraphDelta::new();
        let j = d2.add_vertex("Job", vec![]);
        d2.add_edge(VRef::Existing(VertexId(1)), j, "IS_READ_BY", vec![]);
        engine.submit(d1).unwrap();
        engine.submit(d2).unwrap();
        engine.flush();
        let report = engine.metrics();
        assert_eq!(report.deltas_rejected, 1, "{report:?}");
        // only d1 landed: f0 and its two edges are gone, no new job
        let snap = engine.snapshot();
        assert_eq!(snap.state.graph().vertex_count(), 2);
        assert_eq!(snap.state.graph().edge_count(), 0);
    }

    #[test]
    fn full_queue_reports_backpressure() {
        let g = {
            // a graph big enough that each publish takes measurable work
            use kaskade_datasets::{generate_provenance, ProvenanceConfig};
            generate_provenance(&ProvenanceConfig::tiny(41).core_only())
        };
        let engine = Engine::with_config(
            Snapshot::new(g, Schema::provenance()),
            EngineConfig {
                max_batch: 1,
                queue_capacity: 2,
            },
        );
        // submit far faster than single-delta batches can drain: the
        // bounded queue must refuse at least one submission
        let mut saw_backpressure = false;
        for _ in 0..50_000 {
            let mut d = GraphDelta::new();
            d.add_vertex("File", vec![]);
            match engine.submit(d) {
                Ok(()) => {}
                Err(SubmitError::Backpressure) => {
                    saw_backpressure = true;
                    break;
                }
                Err(e) => panic!("unexpected submit error: {e}"),
            }
        }
        assert!(saw_backpressure, "bounded queue never pushed back");
        assert!(engine.metrics().deltas_backpressured >= 1);
        // the engine keeps serving: flush drains and accepts new work
        engine.flush();
        let mut d = GraphDelta::new();
        d.add_vertex("Job", vec![]);
        engine.submit(d).unwrap();
        engine.flush();
        assert_eq!(engine.queue_depth(), 0);
    }

    #[test]
    fn drop_drains_pending_writes() {
        let state = Snapshot::new(lineage(), Schema::provenance());
        let engine = Engine::new(state);
        for _ in 0..10 {
            let mut d = GraphDelta::new();
            d.add_vertex("File", vec![]);
            engine.submit(d).unwrap();
        }
        let cell = Arc::clone(&engine.shared.cell);
        drop(engine);
        // all 10 vertices landed (possibly across several batches)
        let snap = cell.load();
        assert_eq!(snap.state.graph().vertex_count(), 13);
    }
}
