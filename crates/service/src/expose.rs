//! Metrics exposition: a Prometheus-style text endpoint served over a
//! stdlib [`TcpListener`] — no HTTP framework, no metrics crate, fully
//! offline, matching the hand-rolled spirit of [`crate::metrics`].
//!
//! [`render_prometheus`] turns any [`Observable`] backend into the
//! text exposition format (version 0.0.4): counters and gauges from
//! the stitched [`MetricsReport`], per-view series labeled
//! `{view="..."}`, per-shard series labeled `{shard="N"}`, and full
//! cumulative `_bucket`/`_sum`/`_count` histograms translated from the
//! log-bucket [`LatencyHistogram`]s. [`MetricsServer`] binds a
//! listener and serves it from one background thread:
//!
//! - `GET /metrics` — the exposition text
//! - `GET /healthz` — `ok` (liveness)
//! - `GET /trace`   — the flight-recorder dump ([`Tracer::render_dump`])
//!
//! The accept loop is nonblocking with a short sleep, so dropping the
//! server stops it promptly without a connection-based wakeup hack.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::engine::Engine;
use crate::metrics::{LatencyHistogram, MetricsReport};
use crate::shard::ShardedEngine;
use crate::trace::Tracer;

/// A serving backend that can be scraped. Object-safe on purpose: the
/// exposition thread holds an `Arc<dyn Observable>`, so one server
/// implementation covers [`Engine`], [`ShardedEngine`], and any test
/// double.
pub trait Observable: Send + Sync {
    /// The stitched global report (epoch, plan cache, queue depth
    /// included).
    fn scrape_report(&self) -> MetricsReport;
    /// Per-shard engine reports; empty for an unsharded engine.
    fn shard_reports(&self) -> Vec<MetricsReport> {
        Vec::new()
    }
    /// Vertex slots owned per shard (the scatter balance gauge); empty
    /// for an unsharded engine.
    fn shard_owned_slots(&self) -> Vec<usize> {
        Vec::new()
    }
    /// Visits every live latency histogram as `(metric, shard, hist)`:
    /// `metric` is the short name (`query`, `apply`), `shard` labels
    /// per-shard distributions. Visiting the live histograms (not a
    /// report) is what lets the endpoint emit true cumulative buckets.
    fn visit_histograms(&self, visit: &mut dyn FnMut(&str, Option<usize>, &LatencyHistogram));
    /// The tracing subsystem backing `/trace` and the trace gauges.
    fn tracer(&self) -> &Tracer;
}

impl Observable for Engine {
    fn scrape_report(&self) -> MetricsReport {
        self.metrics()
    }

    fn visit_histograms(&self, visit: &mut dyn FnMut(&str, Option<usize>, &LatencyHistogram)) {
        visit("query", None, self.metrics_handle().query_latency());
        visit("apply", None, self.metrics_handle().apply_latency());
    }

    fn tracer(&self) -> &Tracer {
        Engine::tracer(self)
    }
}

impl Observable for ShardedEngine {
    fn scrape_report(&self) -> MetricsReport {
        self.metrics().global
    }

    fn shard_reports(&self) -> Vec<MetricsReport> {
        self.shard_engines().iter().map(Engine::metrics).collect()
    }

    fn shard_owned_slots(&self) -> Vec<usize> {
        self.snapshot()
            .shard_states
            .iter()
            .map(|s| s.state.graph().owned_vertex_count())
            .collect()
    }

    fn visit_histograms(&self, visit: &mut dyn FnMut(&str, Option<usize>, &LatencyHistogram)) {
        visit("query", None, self.metrics_handle().query_latency());
        // the router's own apply+publish distribution plus one labeled
        // series per shard — the per-shard apply histograms the churn
        // smoke scrapes
        visit("apply", None, self.metrics_handle().apply_latency());
        for (s, shard) in self.shard_engines().iter().enumerate() {
            visit("apply", Some(s), shard.metrics_handle().apply_latency());
        }
    }

    fn tracer(&self) -> &Tracer {
        ShardedEngine::tracer(self)
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn push_counter(out: &mut String, name: &str, help: &str, value: u64) {
    push_series(
        out,
        name,
        help,
        "counter",
        &[(name.to_string(), value as f64)],
    );
}

fn push_gauge(out: &mut String, name: &str, help: &str, value: f64) {
    push_series(out, name, help, "gauge", &[(name.to_string(), value)]);
}

/// One `# HELP`/`# TYPE` header plus the given `(series, value)` rows
/// (each series is the metric name with any label set already baked
/// in). Values render in the shortest float form Prometheus accepts.
fn push_series(out: &mut String, name: &str, help: &str, kind: &str, rows: &[(String, f64)]) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
    for (series, value) in rows {
        if value.fract() == 0.0 && value.abs() < 9.0e15 {
            let _ = writeln!(out, "{series} {}", *value as i64);
        } else {
            let _ = writeln!(out, "{series} {value}");
        }
    }
}

/// Renders one log-bucket histogram as cumulative Prometheus buckets
/// in seconds: one `le` row per non-empty power-of-two bucket (upper
/// bound `2^(i+1)` ns) plus the mandatory `+Inf`, then `_sum` and
/// `_count`. Skipping empty buckets keeps the text compact and is
/// legal — cumulative counts are correct at every emitted bound.
fn push_histogram(out: &mut String, name: &str, help: &str, labels: &str, h: &LatencyHistogram) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    let sep = if labels.is_empty() { "" } else { "," };
    let mut cumulative = 0u64;
    for (i, &n) in h.bucket_counts().iter().enumerate() {
        if n == 0 {
            continue;
        }
        cumulative += n;
        let upper = (1u128 << (i + 1)) as f64 / 1.0e9;
        let _ = writeln!(
            out,
            "{name}_bucket{{{labels}{sep}le=\"{upper}\"}} {cumulative}"
        );
    }
    let _ = writeln!(
        out,
        "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {cumulative}"
    );
    let braced = if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    };
    let _ = writeln!(out, "{name}_sum{braced} {}", h.sum().as_secs_f64());
    let _ = writeln!(out, "{name}_count{braced} {cumulative}");
}

/// Renders the backend's full state in the Prometheus text exposition
/// format (version 0.0.4). Pure function of the backend — the CLI's
/// `--stats-interval` printer and the `/metrics` endpoint share it
/// with the tests.
pub fn render_prometheus(backend: &dyn Observable) -> String {
    use std::fmt::Write as _;
    let r = backend.scrape_report();
    let mut out = String::with_capacity(4096);

    push_counter(
        &mut out,
        "kaskade_queries_total",
        "Queries served successfully.",
        r.queries,
    );
    push_counter(
        &mut out,
        "kaskade_query_errors_total",
        "Queries that returned an error.",
        r.query_errors,
    );
    push_counter(
        &mut out,
        "kaskade_deltas_applied_total",
        "Individual deltas applied by the write path.",
        r.deltas_applied,
    );
    push_counter(
        &mut out,
        "kaskade_deltas_rejected_total",
        "Deltas dropped as invalid.",
        r.deltas_rejected,
    );
    push_counter(
        &mut out,
        "kaskade_deltas_backpressured_total",
        "Submissions refused on a full queue.",
        r.deltas_backpressured,
    );
    push_counter(
        &mut out,
        "kaskade_deltas_stale_rejected_total",
        "Slot-addressed deltas refused because their epoch predates the remap history.",
        r.deltas_stale_rejected,
    );
    push_counter(
        &mut out,
        "kaskade_retractions_applied_total",
        "Retraction operations in applied batches.",
        r.retractions_applied,
    );
    push_counter(
        &mut out,
        "kaskade_views_refreshed_total",
        "Views refreshed by the per-publish refresh DAG.",
        r.views_refreshed,
    );
    push_counter(
        &mut out,
        "kaskade_views_rematerialized_total",
        "Refreshes that fell back to full re-materialization.",
        r.views_rematerialized,
    );
    push_counter(
        &mut out,
        "kaskade_views_created_total",
        "Views created by live DDL (manual or advisor).",
        r.views_created,
    );
    push_counter(
        &mut out,
        "kaskade_views_dropped_total",
        "Views dropped by live DDL (manual or advisor).",
        r.views_dropped,
    );
    push_counter(
        &mut out,
        "kaskade_advisor_migrations_total",
        "Catalog migrations issued by the view-admission advisor.",
        r.advisor_migrations,
    );
    push_counter(
        &mut out,
        "kaskade_compactions_total",
        "Slot compactions run.",
        r.compactions_run,
    );
    push_counter(
        &mut out,
        "kaskade_slots_reclaimed_total",
        "Id slots reclaimed by compactions.",
        r.slots_reclaimed,
    );
    push_counter(
        &mut out,
        "kaskade_batches_published_total",
        "Write batches published (epochs minted).",
        r.batches_published,
    );
    push_counter(
        &mut out,
        "kaskade_plan_cache_hits_total",
        "Plan-cache hits.",
        r.plan_cache_hits,
    );
    push_counter(
        &mut out,
        "kaskade_plan_cache_misses_total",
        "Plan-cache misses.",
        r.plan_cache_misses,
    );
    push_gauge(
        &mut out,
        "kaskade_epoch",
        "Epoch of the currently published snapshot.",
        r.epoch as f64,
    );
    push_gauge(
        &mut out,
        "kaskade_queue_depth",
        "Deltas waiting in the bounded queue.",
        r.queue_depth as f64,
    );
    push_gauge(
        &mut out,
        "kaskade_refresh_lag_seconds",
        "Enqueue-to-visibility lag of the most recent batch.",
        r.last_refresh_lag.as_secs_f64(),
    );
    push_gauge(
        &mut out,
        "kaskade_refresh_lag_max_seconds",
        "Worst enqueue-to-visibility lag observed.",
        r.max_refresh_lag.as_secs_f64(),
    );

    let tracer = backend.tracer();
    push_gauge(
        &mut out,
        "kaskade_trace_enabled",
        "Whether span tracing is on (1) or off (0).",
        tracer.is_enabled() as u64 as f64,
    );
    push_counter(
        &mut out,
        "kaskade_trace_dropped_events_total",
        "Trace events dropped on flight-recorder slot contention.",
        tracer.dropped_events(),
    );
    push_counter(
        &mut out,
        "kaskade_slow_queries_total",
        "Queries that crossed the slow-query threshold.",
        tracer.slow_queries(),
    );

    // per-view dimensional series
    if !r.per_view.is_empty() {
        let rows = |f: &dyn Fn(&crate::metrics::ViewMetrics) -> f64| {
            r.per_view
                .iter()
                .map(|v| (format!("{{view=\"{}\"}}", escape_label(&v.name)), f(v)))
                .collect::<Vec<_>>()
        };
        let named = |name: &str, rows: Vec<(String, f64)>| {
            rows.into_iter()
                .map(|(l, v)| (format!("{name}{l}"), v))
                .collect::<Vec<_>>()
        };
        push_series(
            &mut out,
            "kaskade_view_refreshes_total",
            "Publishes that refreshed this view.",
            "counter",
            &named(
                "kaskade_view_refreshes_total",
                rows(&|v| v.refreshes as f64),
            ),
        );
        push_series(
            &mut out,
            "kaskade_view_rematerializations_total",
            "Full scratch re-materializations of this view.",
            "counter",
            &named(
                "kaskade_view_rematerializations_total",
                rows(&|v| v.rematerialized as f64),
            ),
        );
        push_series(
            &mut out,
            "kaskade_view_recomputed_total",
            "Units of incremental work (delta size) across refreshes.",
            "counter",
            &named(
                "kaskade_view_recomputed_total",
                rows(&|v| v.recomputed as f64),
            ),
        );
        push_series(
            &mut out,
            "kaskade_view_refresh_seconds_total",
            "Total wall-clock spent refreshing this view.",
            "counter",
            &named(
                "kaskade_view_refresh_seconds_total",
                rows(&|v| v.refresh_total.as_secs_f64()),
            ),
        );
        push_series(
            &mut out,
            "kaskade_view_last_refresh_seconds",
            "Duration of the view's most recent refresh.",
            "gauge",
            &named(
                "kaskade_view_last_refresh_seconds",
                rows(&|v| v.last_refresh.as_secs_f64()),
            ),
        );
        push_series(
            &mut out,
            "kaskade_view_dag_level",
            "Refresh-DAG level the view last ran in.",
            "gauge",
            &named("kaskade_view_dag_level", rows(&|v| v.level as f64)),
        );
        let mut q_rows = Vec::new();
        for v in &r.per_view {
            let view = escape_label(&v.name);
            q_rows.push((
                format!(
                    "kaskade_view_refresh_quantile_seconds{{view=\"{view}\",quantile=\"0.5\"}}"
                ),
                v.refresh_p50.as_secs_f64(),
            ));
            q_rows.push((
                format!(
                    "kaskade_view_refresh_quantile_seconds{{view=\"{view}\",quantile=\"0.99\"}}"
                ),
                v.refresh_p99.as_secs_f64(),
            ));
        }
        push_series(
            &mut out,
            "kaskade_view_refresh_quantile_seconds",
            "Per-view refresh-time quantiles (log-bucket upper bounds).",
            "gauge",
            &q_rows,
        );
    }

    // per-view benefit sensors (the advisor's keep-alive evidence)
    if !r.view_benefits.is_empty() {
        let rows: Vec<(String, f64)> = r
            .view_benefits
            .iter()
            .map(|b| {
                (
                    format!(
                        "kaskade_view_queries_answered_total{{view=\"{}\"}}",
                        escape_label(&b.name)
                    ),
                    b.answered as f64,
                )
            })
            .collect();
        push_series(
            &mut out,
            "kaskade_view_queries_answered_total",
            "Queries answered by this materialized view.",
            "counter",
            &rows,
        );
    }

    // per-shard series
    let shards = backend.shard_reports();
    if !shards.is_empty() {
        let row = |name: &str, s: usize, v: f64| (format!("{name}{{shard=\"{s}\"}}"), v);
        let collect = |name: &str, f: &dyn Fn(&MetricsReport) -> f64| {
            shards
                .iter()
                .enumerate()
                .map(|(s, r)| row(name, s, f(r)))
                .collect::<Vec<_>>()
        };
        push_series(
            &mut out,
            "kaskade_shard_deltas_applied_total",
            "Sub-deltas applied by this shard engine.",
            "counter",
            &collect("kaskade_shard_deltas_applied_total", &|r| {
                r.deltas_applied as f64
            }),
        );
        push_series(
            &mut out,
            "kaskade_shard_batches_published_total",
            "Batches published by this shard engine.",
            "counter",
            &collect("kaskade_shard_batches_published_total", &|r| {
                r.batches_published as f64
            }),
        );
        push_series(
            &mut out,
            "kaskade_shard_apply_seconds_total",
            "Cumulative apply+publish time on this shard.",
            "counter",
            &collect("kaskade_shard_apply_seconds_total", &|r| {
                r.apply_total.as_secs_f64()
            }),
        );
        push_series(
            &mut out,
            "kaskade_shard_queue_depth",
            "Deltas waiting in this shard's queue.",
            "gauge",
            &collect("kaskade_shard_queue_depth", &|r| r.queue_depth as f64),
        );
        let owned = backend.shard_owned_slots();
        if !owned.is_empty() {
            let rows: Vec<_> = owned
                .iter()
                .enumerate()
                .map(|(s, &n)| row("kaskade_shard_owned_slots", s, n as f64))
                .collect();
            push_series(
                &mut out,
                "kaskade_shard_owned_slots",
                "Vertex slots owned by this shard.",
                "gauge",
                &rows,
            );
        }
    }

    // full latency distributions, straight from the live histograms
    backend.visit_histograms(&mut |metric, shard, hist| {
        let name = format!("kaskade_{metric}_latency_seconds");
        let help = match metric {
            "query" => "Query latency distribution.",
            "apply" => "Per-batch apply+publish latency distribution.",
            _ => "Latency distribution.",
        };
        let labels = match shard {
            Some(s) => format!("shard=\"{s}\""),
            None => String::new(),
        };
        push_histogram(&mut out, &name, help, &labels, hist);
    });

    let _ = writeln!(out, "# EOF");
    out
}

/// A minimal HTTP/1.0-ish exposition server on a background thread.
/// Binding `127.0.0.1:0` picks a free port ([`MetricsServer::addr`]
/// reports it). Dropping the server stops and joins the thread.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9100`) and starts serving
    /// `backend` — `/metrics`, `/healthz`, and `/trace`.
    pub fn bind(addr: &str, backend: Arc<dyn Observable>) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("kaskade-metrics".into())
            .spawn(move || accept_loop(listener, backend, thread_stop))?;
        Ok(MetricsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: TcpListener, backend: Arc<dyn Observable>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = handle_connection(stream, &*backend);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => break,
        }
    }
}

/// Answers one request: reads until the header terminator, routes on
/// the path, writes a Connection: close response. Deliberately
/// tolerant — a scraper only needs the verb-less essentials.
fn handle_connection(mut stream: TcpStream, backend: &dyn Observable) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    // a single read() may return an arbitrary prefix of the request
    // (TCP has no message boundaries), so accumulate until the blank
    // line that ends the headers — or EOF, the read deadline, or a
    // bounded maximum for clients that never send one
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") && buf.len() < 8192 {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                break
            }
            Err(e) => return Err(e),
        }
    }
    let request = String::from_utf8_lossy(&buf);
    let path = request
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("/");
    let (status, body) = match path {
        "/healthz" => ("200 OK", "ok\n".to_string()),
        "/metrics" | "/" => ("200 OK", render_prometheus(backend)),
        "/trace" => ("200 OK", backend.tracer().render_dump()),
        _ => ("404 Not Found", "not found\n".to_string()),
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(response.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaskade_core::Kaskade;
    use kaskade_datasets::{generate_provenance, ProvenanceConfig};
    use kaskade_graph::Schema;

    fn engine() -> Engine {
        let g = generate_provenance(&ProvenanceConfig::tiny(3).core_only());
        Engine::from_kaskade(&Kaskade::new(g, Schema::provenance()))
    }

    #[test]
    fn exposition_has_key_series_and_valid_histograms() {
        let e = engine();
        let q = kaskade_query::parse(kaskade_query::listings::LISTING_1).unwrap();
        e.execute(&q).unwrap();
        e.execute(&q).unwrap();
        let text = render_prometheus(&e);
        for needle in [
            "# TYPE kaskade_queries_total counter",
            "kaskade_queries_total 2",
            "kaskade_plan_cache_hits_total 1",
            "kaskade_epoch 0",
            "# TYPE kaskade_query_latency_seconds histogram",
            "kaskade_query_latency_seconds_bucket{le=\"+Inf\"} 2",
            "kaskade_query_latency_seconds_count 2",
            "kaskade_trace_enabled 0",
            "# EOF",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
        // cumulative buckets never decrease
        let mut last = 0u64;
        for line in text
            .lines()
            .filter(|l| l.starts_with("kaskade_query_latency_seconds_bucket"))
        {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "non-monotonic bucket in {line}");
            last = v;
        }
    }

    #[test]
    fn sharded_exposition_labels_shards() {
        use crate::shard::ShardedConfig;
        let g = generate_provenance(&ProvenanceConfig::tiny(5).core_only());
        let k = Kaskade::new(g, Schema::provenance());
        let sharded = ShardedEngine::with_config(
            k.snapshot(),
            ShardedConfig {
                scatter_min_vertices: 0,
                ..ShardedConfig::hash(2)
            },
        );
        let mut delta = kaskade_core::GraphDelta::new();
        delta.add_vertex("Job", vec![]);
        sharded.submit(delta, crate::SubmitOpts::default()).unwrap();
        sharded.flush();
        let text = render_prometheus(&sharded);
        for needle in [
            "kaskade_shard_deltas_applied_total{shard=\"0\"}",
            "kaskade_shard_deltas_applied_total{shard=\"1\"}",
            "kaskade_shard_owned_slots{shard=\"0\"}",
            "kaskade_epoch 1",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn server_answers_metrics_healthz_and_trace() {
        let e = Arc::new(engine());
        let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&e) as Arc<dyn Observable>)
            .expect("bind");
        let get = |path: &str| {
            let mut s = TcpStream::connect(server.addr()).expect("connect");
            s.write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
                .unwrap();
            let mut out = String::new();
            s.read_to_string(&mut out).unwrap();
            out
        };
        assert!(get("/healthz").contains("ok"));
        let metrics = get("/metrics");
        assert!(metrics.starts_with("HTTP/1.0 200 OK"), "{metrics}");
        assert!(metrics.contains("kaskade_queries_total"), "{metrics}");
        assert!(get("/trace").contains("flight recorder"));
        assert!(get("/nope").starts_with("HTTP/1.0 404"));
        drop(server); // joins the accept thread
    }

    /// Regression: the server used to parse whatever a single
    /// `read()` returned. A client that trickles the request in
    /// byte-sized writes would race that read, and a short first read
    /// (e.g. just `"G"`) misrouted every request to 404. The server
    /// must accumulate until the `\r\n\r\n` header terminator.
    #[test]
    fn server_survives_byte_by_byte_client() {
        let e = Arc::new(engine());
        let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&e) as Arc<dyn Observable>)
            .expect("bind");
        let mut s = TcpStream::connect(server.addr()).expect("connect");
        s.set_nodelay(true).unwrap();
        for b in b"GET /healthz HTTP/1.0\r\n\r\n" {
            s.write_all(std::slice::from_ref(b)).unwrap();
            s.flush().unwrap();
            // give the server's read() a chance to observe a partial
            // request between bytes
            std::thread::sleep(Duration::from_millis(1));
        }
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.0 200 OK"), "{out}");
        assert!(out.contains("ok"), "{out}");
        drop(server);
    }
}
