//! # kaskade-service
//!
//! The concurrent serving runtime of the Kaskade reproduction: the
//! layer that lets many reader threads execute queries over
//! materialized graph views *while* deltas — insertions **and
//! retractions** — stream in; the "heavy traffic" counterpart to
//! `kaskade-core`'s batch pipeline.
//!
//! Three ideas, three modules:
//!
//! - **Snapshot isolation** ([`snapshot`]): the engine publishes
//!   immutable `Arc<EpochSnapshot>` states (base graph + view catalog +
//!   statistics, all structurally shared). A query runs entirely
//!   against one snapshot; per-thread [`Reader`] handles revalidate
//!   their cached snapshot with a single atomic epoch load, so
//!   steady-state snapshot access takes no lock — the plan-cache probe
//!   is the one short critical section left on the read path.
//! - **Delta ingestion** ([`engine`]): writes are queued
//!   [`GraphDelta`]s carrying both inserts and identity-targeted
//!   retractions. A single background worker merges them into batches
//!   ([`GraphDelta::merge`], which cancels insert-then-delete pairs),
//!   applies them through `kaskade-core`'s refresh DAG — every
//!   catalog view maintained incrementally by its `ViewMaintainer`,
//!   level-parallel where views are independent — plus incremental
//!   statistics updates, and atomically publishes the successor
//!   snapshot. Readers
//!   never block writers and vice versa. The queue is bounded: when the
//!   worker falls behind, [`Engine::submit`] fails fast with a typed
//!   `Backpressure` error instead of buffering without bound. The
//!   writer also keeps memory bounded under churn: once dead id slots
//!   exceed [`EngineConfig::compact_dead_ratio`] of capacity it runs
//!   **epoch-fenced slot compaction** — dead slots drop, live ids
//!   renumber, the compacted state publishes as its own epoch, and
//!   deltas queued against older epochs are rebased through the
//!   recorded id remaps so in-flight writes never observe the
//!   renumbering.
//! - **Plan caching** ([`plan_cache`]): `plan()` results are memoized
//!   per `(epoch, alpha-normalized query)`, with hit/miss counters
//!   surfaced through [`metrics`].
//!
//! A fourth module scales the first three out: **sharding**
//! ([`shard`]) partitions the base graph across per-shard engines
//! behind a router ([`ShardedEngine`]), parallelizing delta apply and
//! view refresh on the write path and scattering/gathering pattern
//! matching on the read path — observationally identical to a single
//! engine (differential proptests enforce byte-identical query
//! results, views, and statistics).
//!
//! ```
//! use kaskade_core::{GraphDelta, Kaskade};
//! use kaskade_datasets::{generate_provenance, ProvenanceConfig};
//! use kaskade_graph::Schema;
//! use kaskade_query::{listings::LISTING_1, parse};
//! use kaskade_service::{Engine, SubmitOpts};
//!
//! let g = generate_provenance(&ProvenanceConfig::tiny(7).core_only());
//! let engine = Engine::from_kaskade(&Kaskade::new(g, Schema::provenance()));
//!
//! // any number of readers, zero read-path locking
//! let query = parse(LISTING_1).unwrap();
//! let before = engine.execute(&query).unwrap();
//!
//! // writes land asynchronously; flush() waits for visibility
//! let mut delta = GraphDelta::new();
//! delta.add_vertex("Job", vec![]);
//! engine.submit(delta, SubmitOpts::default()).unwrap();
//! engine.flush();
//! assert_eq!(engine.epoch(), 1);
//! assert_eq!(engine.metrics().deltas_applied, 1);
//! # drop(before);
//! ```
//!
//! The `kaskade serve` CLI mode and the `kaskade-bench` concurrent
//! throughput experiment both drive this engine through
//! [`drive()`](drive::drive).
//!
//! [`GraphDelta`]: kaskade_core::GraphDelta
//! [`GraphDelta::merge`]: kaskade_core::GraphDelta::merge

#![warn(missing_docs)]

pub mod advisor;
pub mod anchor;
pub mod drive;
pub mod engine;
pub mod expose;
pub mod metrics;
pub mod plan_cache;
pub mod pool;
pub mod shard;
pub mod snapshot;
pub mod stream;
pub mod trace;
pub mod wal;

pub use advisor::{advise_once, Advisor, AdvisorConfig, AdvisorState, AdvisorTick};
pub use anchor::execute_anchored;
pub use drive::{drive, snapshot_is_consistent, DriveConfig, DriveOutcome, ServingBackend};
pub use engine::{Engine, EngineConfig, SubmitError, SubmitOpts};
pub use expose::{render_prometheus, MetricsServer, Observable};
pub use metrics::{LatencyHistogram, Metrics, MetricsReport, ViewMetrics};
pub use plan_cache::{plan_key, PlanCache};
pub use pool::WorkerPool;
pub use shard::{
    HashPartitioner, Partitioner, ShardedConfig, ShardedEngine, ShardedMetricsReport,
    ShardedReader, ShardedSnapshot, TypePartitioner,
};
pub use snapshot::{EpochSnapshot, Reader, SnapshotCell};
pub use stream::{burst_delta, churn_delta, delta_for, hot_key_delta, scripted_delta, Workload};
pub use trace::{Span, Stage, TraceEvent, Tracer};
pub use wal::{recover, Recovered, Wal, WalConfig};
