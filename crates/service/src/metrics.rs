//! Serving metrics: query throughput, latency quantiles, write-path
//! refresh lag, and plan-cache effectiveness.
//!
//! All counters are lock-free atomics updated on the hot paths; the
//! latency distribution is a fixed array of power-of-two nanosecond
//! buckets (a log-scale histogram), so recording a sample is one atomic
//! increment and quantiles are a 64-entry scan at report time. Reports
//! are point-in-time copies ([`MetricsReport`]) — grab one whenever, the
//! serving threads never block on it.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two latency buckets (bucket `i` holds samples in
/// `[2^i, 2^(i+1))` nanoseconds; 64 buckets cover any `u64` duration).
const BUCKETS: usize = 64;

/// A log-scale latency histogram with atomic buckets.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Records one sample.
    pub fn record(&self, d: Duration) {
        let nanos = (d.as_nanos() as u64).max(1);
        let idx = (63 - nanos.leading_zeros()) as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Approximate quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket containing the q-th sample (within 2x of the true value).
    /// Returns `Duration::ZERO` with no samples — an idle engine
    /// reports a p99 of zero, never a sentinel garbage value.
    pub fn quantile(&self, q: f64) -> Duration {
        let total = self.count();
        if total == 0 {
            return Duration::ZERO;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                let upper = 1u128 << (i + 1);
                return Duration::from_nanos(upper.min(u64::MAX as u128) as u64);
            }
        }
        // reachable only when a racing `record` has bumped `count`
        // before its bucket store is visible; report zero rather than
        // a nonsense `u64::MAX` duration
        Duration::ZERO
    }
}

/// Live serving counters shared by all engine threads.
#[derive(Debug, Default)]
pub struct Metrics {
    queries: AtomicU64,
    query_errors: AtomicU64,
    latency: LatencyHistogram,
    deltas_applied: AtomicU64,
    deltas_rejected: AtomicU64,
    deltas_backpressured: AtomicU64,
    retractions_applied: AtomicU64,
    views_refreshed: AtomicU64,
    views_rematerialized: AtomicU64,
    compactions_run: AtomicU64,
    slots_reclaimed: AtomicU64,
    batches_published: AtomicU64,
    apply_total_nanos: AtomicU64,
    last_refresh_nanos: AtomicU64,
    max_lag_nanos: AtomicU64,
    last_lag_nanos: AtomicU64,
}

impl Metrics {
    /// An all-zero metrics block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one served query and its latency.
    pub fn record_query(&self, latency: Duration) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.latency.record(latency);
    }

    /// Records a failed query.
    pub fn record_query_error(&self) {
        self.query_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records deltas the writer dropped as invalid (dangling or
    /// tombstoned vertex references that could never apply).
    pub fn record_rejected(&self, deltas: usize) {
        self.deltas_rejected
            .fetch_add(deltas as u64, Ordering::Relaxed);
    }

    /// Records one submission refused because the bounded delta queue
    /// was full (the `Backpressure` error path).
    pub fn record_backpressure(&self) {
        self.deltas_backpressured.fetch_add(1, Ordering::Relaxed);
    }

    /// Records retraction operations (edge or vertex) that reached an
    /// applied batch.
    pub fn record_retractions(&self, retractions: usize) {
        self.retractions_applied
            .fetch_add(retractions as u64, Ordering::Relaxed);
    }

    /// Records one publish's view maintenance: how many views the
    /// refresh DAG refreshed and how many of those fell back to a full
    /// scratch re-materialization. On incremental-safe workloads (every
    /// composed view's upstream cataloged) the second counter stays 0 —
    /// the CI smoke gates on it.
    pub fn record_view_refresh(&self, refreshed: u64, rematerialized: u64) {
        self.views_refreshed.fetch_add(refreshed, Ordering::Relaxed);
        self.views_rematerialized
            .fetch_add(rematerialized, Ordering::Relaxed);
    }

    /// Records one slot compaction and the id slots (vertex + edge,
    /// live + dead capacity before minus after) it reclaimed.
    pub fn record_compaction(&self, reclaimed: usize) {
        self.compactions_run.fetch_add(1, Ordering::Relaxed);
        self.slots_reclaimed
            .fetch_add(reclaimed as u64, Ordering::Relaxed);
    }

    /// Records one applied write batch: how many deltas it merged, how
    /// long apply+publish took, and the refresh lag (enqueue of the
    /// oldest delta in the batch → visibility to readers).
    pub fn record_refresh(&self, deltas: usize, apply: Duration, lag: Duration) {
        self.deltas_applied
            .fetch_add(deltas as u64, Ordering::Relaxed);
        self.batches_published.fetch_add(1, Ordering::Relaxed);
        self.apply_total_nanos
            .fetch_add(apply.as_nanos() as u64, Ordering::Relaxed);
        self.last_refresh_nanos
            .store(apply.as_nanos() as u64, Ordering::Relaxed);
        let lag = lag.as_nanos() as u64;
        self.last_lag_nanos.store(lag, Ordering::Relaxed);
        self.max_lag_nanos.fetch_max(lag, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter, with derived quantiles.
    /// `plan_cache_*` and `epoch` are stitched in by the engine, which
    /// owns those components.
    pub(crate) fn report(&self) -> MetricsReport {
        MetricsReport {
            queries: self.queries.load(Ordering::Relaxed),
            query_errors: self.query_errors.load(Ordering::Relaxed),
            p50: self.latency.quantile(0.50),
            p99: self.latency.quantile(0.99),
            deltas_applied: self.deltas_applied.load(Ordering::Relaxed),
            deltas_rejected: self.deltas_rejected.load(Ordering::Relaxed),
            deltas_backpressured: self.deltas_backpressured.load(Ordering::Relaxed),
            retractions_applied: self.retractions_applied.load(Ordering::Relaxed),
            views_refreshed: self.views_refreshed.load(Ordering::Relaxed),
            views_rematerialized: self.views_rematerialized.load(Ordering::Relaxed),
            compactions_run: self.compactions_run.load(Ordering::Relaxed),
            slots_reclaimed: self.slots_reclaimed.load(Ordering::Relaxed),
            batches_published: self.batches_published.load(Ordering::Relaxed),
            apply_total: Duration::from_nanos(self.apply_total_nanos.load(Ordering::Relaxed)),
            last_refresh: Duration::from_nanos(self.last_refresh_nanos.load(Ordering::Relaxed)),
            last_refresh_lag: Duration::from_nanos(self.last_lag_nanos.load(Ordering::Relaxed)),
            max_refresh_lag: Duration::from_nanos(self.max_lag_nanos.load(Ordering::Relaxed)),
            epoch: 0,
            plan_cache_hits: 0,
            plan_cache_misses: 0,
        }
    }
}

/// A point-in-time snapshot of the engine's metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReport {
    /// Queries served successfully.
    pub queries: u64,
    /// Queries that returned an error.
    pub query_errors: u64,
    /// Median query latency (log-bucket upper bound).
    pub p50: Duration,
    /// 99th-percentile query latency (log-bucket upper bound).
    pub p99: Duration,
    /// Individual deltas applied by the write path.
    pub deltas_applied: u64,
    /// Deltas dropped as invalid (dangling or tombstoned references).
    pub deltas_rejected: u64,
    /// Submissions refused because the bounded delta queue was full.
    pub deltas_backpressured: u64,
    /// Retraction operations (edge or vertex) in applied batches.
    pub retractions_applied: u64,
    /// Views refreshed by the per-publish refresh DAG (delta-driven).
    pub views_refreshed: u64,
    /// Of the refreshed views, how many fell back to a full scratch
    /// re-materialization (a composed view refreshed without its
    /// upstream connector in the catalog). Stays 0 on incremental-safe
    /// workloads — the `--expect-incremental` CI smoke gates on it.
    pub views_rematerialized: u64,
    /// Slot compactions run (each publishes its own epoch).
    pub compactions_run: u64,
    /// Total id slots (vertex + edge capacity) reclaimed by
    /// compactions.
    pub slots_reclaimed: u64,
    /// Write batches published (snapshot epochs minted).
    pub batches_published: u64,
    /// Cumulative apply+publish time across all batches — the total
    /// wall-clock the write path spent ingesting. The `serve_sharded`
    /// experiment compares this figure per shard against the
    /// single-engine total to show the write path parallelizing.
    pub apply_total: Duration,
    /// Apply+publish duration of the most recent batch.
    pub last_refresh: Duration,
    /// Enqueue→visibility lag of the most recent batch.
    pub last_refresh_lag: Duration,
    /// Worst enqueue→visibility lag observed.
    pub max_refresh_lag: Duration,
    /// Epoch of the currently published snapshot.
    pub epoch: u64,
    /// Plan-cache hits.
    pub plan_cache_hits: u64,
    /// Plan-cache misses.
    pub plan_cache_misses: u64,
}

impl MetricsReport {
    /// `hits / (hits + misses)`, or 0.0 before any lookup.
    pub fn plan_cache_hit_rate(&self) -> f64 {
        let total = self.plan_cache_hits + self.plan_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.plan_cache_hits as f64 / total as f64
        }
    }
}

impl fmt::Display for MetricsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "queries served     {} ({} errors)",
            self.queries, self.query_errors
        )?;
        writeln!(
            f,
            "query latency      p50 {:?}  p99 {:?}",
            self.p50, self.p99
        )?;
        writeln!(
            f,
            "plan cache         {} hits / {} misses ({:.0}% hit rate)",
            self.plan_cache_hits,
            self.plan_cache_misses,
            100.0 * self.plan_cache_hit_rate()
        )?;
        writeln!(
            f,
            "write path         {} deltas in {} batches (epoch {}, {} rejected, {} backpressured)",
            self.deltas_applied,
            self.batches_published,
            self.epoch,
            self.deltas_rejected,
            self.deltas_backpressured
        )?;
        writeln!(f, "retractions        {} applied", self.retractions_applied)?;
        writeln!(
            f,
            "view refresh       {} refreshed, {} rematerialized",
            self.views_refreshed, self.views_rematerialized
        )?;
        writeln!(
            f,
            "compaction         {} runs, {} slots reclaimed",
            self.compactions_run, self.slots_reclaimed
        )?;
        write!(
            f,
            "refresh            last {:?} (total {:?}, lag {:?}, max lag {:?})",
            self.last_refresh, self.apply_total, self.last_refresh_lag, self.max_refresh_lag
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = LatencyHistogram::default();
        for micros in [1u64, 10, 100, 100, 100, 1000] {
            h.record(Duration::from_micros(micros));
        }
        assert_eq!(h.count(), 6);
        let p50 = h.quantile(0.5);
        // the median sample is 100µs; the log-bucket upper bound is
        // within 2x above it
        assert!(p50 >= Duration::from_micros(100) && p50 <= Duration::from_micros(200));
        assert!(h.quantile(1.0) >= Duration::from_micros(1000));
        assert_eq!(LatencyHistogram::default().quantile(0.5), Duration::ZERO);
    }

    #[test]
    fn empty_histogram_reports_zero_quantiles() {
        // regression: an idle run must print a p99 of zero, not the
        // `u64::MAX`-nanoseconds sentinel (~584 years)
        let h = LatencyHistogram::default();
        assert_eq!(h.count(), 0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Duration::ZERO, "q={q}");
        }
        let idle = Metrics::new().report();
        assert_eq!(idle.p50, Duration::ZERO);
        assert_eq!(idle.p99, Duration::ZERO);
    }

    #[test]
    fn compaction_counters_accumulate() {
        let m = Metrics::new();
        m.record_compaction(120);
        m.record_compaction(40);
        let r = m.report();
        assert_eq!(r.compactions_run, 2);
        assert_eq!(r.slots_reclaimed, 160);
        assert!(r.to_string().contains("compaction"));
    }

    #[test]
    fn refresh_metrics_track_max_lag() {
        let m = Metrics::new();
        m.record_refresh(3, Duration::from_millis(2), Duration::from_millis(5));
        m.record_refresh(1, Duration::from_millis(1), Duration::from_millis(3));
        let r = m.report();
        assert_eq!(r.deltas_applied, 4);
        assert_eq!(r.batches_published, 2);
        assert_eq!(r.apply_total, Duration::from_millis(3));
        assert_eq!(r.max_refresh_lag, Duration::from_millis(5));
        assert_eq!(r.last_refresh_lag, Duration::from_millis(3));
    }

    #[test]
    fn report_displays_every_section() {
        let m = Metrics::new();
        m.record_query(Duration::from_micros(50));
        m.record_view_refresh(5, 1);
        let s = m.report().to_string();
        assert!(s.contains("5 refreshed, 1 rematerialized"), "{s}");
        for needle in [
            "queries served",
            "plan cache",
            "write path",
            "view refresh",
            "refresh",
        ] {
            assert!(s.contains(needle), "missing `{needle}` in:\n{s}");
        }
    }
}
