//! Serving metrics: query throughput, latency quantiles, write-path
//! refresh lag, and plan-cache effectiveness.
//!
//! All counters are lock-free atomics updated on the hot paths; the
//! latency distribution is a fixed array of power-of-two nanosecond
//! buckets (a log-scale histogram), so recording a sample is one atomic
//! increment and quantiles are a 64-entry scan at report time. Reports
//! are point-in-time copies ([`MetricsReport`]) — grab one whenever, the
//! serving threads never block on it.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use kaskade_core::{ViewId, ViewRefreshStat};
use kaskade_query::Query;

/// Number of power-of-two latency buckets (bucket `i` holds samples in
/// `[2^i, 2^(i+1))` nanoseconds; 64 buckets cover any `u64` duration).
pub const BUCKETS: usize = 64;

/// A log-scale latency histogram with atomic buckets.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_nanos: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Records one sample.
    pub fn record(&self, d: Duration) {
        let nanos = (d.as_nanos() as u64).max(1);
        let idx = (63 - nanos.leading_zeros()) as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples (saturating at `u64::MAX` ns).
    pub fn sum(&self) -> Duration {
        Duration::from_nanos(self.sum_nanos.load(Ordering::Relaxed))
    }

    /// Adds every sample of `other` into `self`. This is how
    /// `ShardedMetricsReport` gets **true merged quantiles**: merge the
    /// per-shard histograms into a scratch histogram, then take
    /// [`LatencyHistogram::quantile`] of the merge — rather than
    /// averaging (meaningless for quantiles) or reporting only the
    /// coordinator-side distribution.
    pub fn merge(&self, other: &LatencyHistogram) {
        let mut merged = 0u64;
        for (b, o) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = o.load(Ordering::Relaxed);
            if n > 0 {
                b.fetch_add(n, Ordering::Relaxed);
                merged += n;
            }
        }
        self.sum_nanos
            .fetch_add(other.sum_nanos.load(Ordering::Relaxed), Ordering::Relaxed);
        // count what we actually copied, so a concurrently-recording
        // `other` cannot leave `self.count` ahead of its buckets
        self.count.fetch_add(merged, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts; bucket `i` holds
    /// samples in `[2^i, 2^(i+1))` nanoseconds. The exposition endpoint
    /// turns these into cumulative Prometheus `le` buckets.
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        let mut out = [0u64; BUCKETS];
        for (o, b) in out.iter_mut().zip(self.buckets.iter()) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }

    /// Approximate quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket containing the q-th sample (within 2x of the true value).
    /// Returns `Duration::ZERO` with no samples — an idle engine
    /// reports a p99 of zero, never a sentinel garbage value.
    pub fn quantile(&self, q: f64) -> Duration {
        let total = self.count();
        if total == 0 {
            return Duration::ZERO;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                let upper = 1u128 << (i + 1);
                return Duration::from_nanos(upper.min(u64::MAX as u128) as u64);
            }
        }
        // reachable only when a racing `record` has bumped `count`
        // before its bucket store is visible; report zero rather than
        // a nonsense `u64::MAX` duration
        Duration::ZERO
    }
}

/// Per-view counters accumulated across publishes (one slot per
/// catalog view, keyed by display name).
#[derive(Debug, Default)]
struct PerViewSlot {
    name: String,
    level: usize,
    refreshes: u64,
    rematerialized: u64,
    recomputed: u64,
    last_nanos: u64,
    hist: LatencyHistogram,
}

/// Per-view **benefit** attribution: queries this view answered and
/// the latency they cost, keyed by the view's stable [`ViewId`]. These
/// are the positive sensor inputs of the adaptive advisor (the miss
/// log is the negative side).
#[derive(Debug)]
struct BenefitSlot {
    id: ViewId,
    name: String,
    answered: u64,
    total_nanos: u64,
}

/// One normalized query shape the planner could only answer from the
/// base graph — a view that *would have* matched it may be missing.
#[derive(Debug)]
struct MissSlot {
    key: String,
    query: Query,
    count: u64,
    total_nanos: u64,
}

/// Distinct normalized shapes the miss log retains; further new shapes
/// are dropped (the hot shapes an advisor cares about recur and are
/// captured long before the cap).
const MISS_LOG_CAP: usize = 128;

/// Live serving counters shared by all engine threads.
#[derive(Debug, Default)]
pub struct Metrics {
    queries: AtomicU64,
    query_errors: AtomicU64,
    latency: LatencyHistogram,
    apply_latency: LatencyHistogram,
    deltas_applied: AtomicU64,
    deltas_rejected: AtomicU64,
    deltas_backpressured: AtomicU64,
    deltas_stale_rejected: AtomicU64,
    retractions_applied: AtomicU64,
    views_refreshed: AtomicU64,
    views_rematerialized: AtomicU64,
    views_created: AtomicU64,
    views_dropped: AtomicU64,
    advisor_migrations: AtomicU64,
    compactions_run: AtomicU64,
    slots_reclaimed: AtomicU64,
    batches_published: AtomicU64,
    apply_total_nanos: AtomicU64,
    last_refresh_nanos: AtomicU64,
    max_lag_nanos: AtomicU64,
    last_lag_nanos: AtomicU64,
    per_view: Mutex<Vec<PerViewSlot>>,
    benefits: Mutex<Vec<BenefitSlot>>,
    misses: Mutex<Vec<MissSlot>>,
}

impl Metrics {
    /// An all-zero metrics block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one served query and its latency.
    pub fn record_query(&self, latency: Duration) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.latency.record(latency);
    }

    /// Records a failed query.
    pub fn record_query_error(&self) {
        self.query_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records deltas the writer dropped as invalid (dangling or
    /// tombstoned vertex references that could never apply).
    pub fn record_rejected(&self, deltas: usize) {
        self.deltas_rejected
            .fetch_add(deltas as u64, Ordering::Relaxed);
    }

    /// Records one submission refused because the bounded delta queue
    /// was full (the `Backpressure` error path).
    pub fn record_backpressure(&self) {
        self.deltas_backpressured.fetch_add(1, Ordering::Relaxed);
    }

    /// Records slot-addressed deltas refused as **stale**: their
    /// `based_on` epoch predates the retained compaction-remap
    /// history, so their ids can no longer be rebased safely (the
    /// typed `StaleEpoch` error path; external-id-addressed deltas
    /// never hit this).
    pub fn record_stale(&self, deltas: usize) {
        self.deltas_stale_rejected
            .fetch_add(deltas as u64, Ordering::Relaxed);
    }

    /// Records retraction operations (edge or vertex) that reached an
    /// applied batch.
    pub fn record_retractions(&self, retractions: usize) {
        self.retractions_applied
            .fetch_add(retractions as u64, Ordering::Relaxed);
    }

    /// Records one publish's view maintenance: how many views the
    /// refresh DAG refreshed and how many of those fell back to a full
    /// scratch re-materialization. On incremental-safe workloads (every
    /// composed view's upstream cataloged) the second counter stays 0 —
    /// the CI smoke gates on it.
    pub fn record_view_refresh(&self, refreshed: u64, rematerialized: u64) {
        self.views_refreshed.fetch_add(refreshed, Ordering::Relaxed);
        self.views_rematerialized
            .fetch_add(rematerialized, Ordering::Relaxed);
    }

    /// Accumulates one view's per-publish refresh stat under its
    /// display name: refresh-time histogram, delta size (recomputed
    /// units), and rematerialization fallbacks — the dimensional
    /// breakdown behind the global [`Metrics::record_view_refresh`]
    /// counters. Called by the (single) writer worker per publish, so
    /// the mutex is uncontended in steady state.
    pub fn record_per_view(&self, name: &str, stat: &ViewRefreshStat) {
        let mut views = self.per_view.lock().expect("per-view metrics poisoned");
        let slot = match views.iter_mut().find(|s| s.name == name) {
            Some(slot) => slot,
            None => {
                views.push(PerViewSlot {
                    name: name.to_string(),
                    ..PerViewSlot::default()
                });
                views.last_mut().expect("just pushed")
            }
        };
        slot.level = stat.level;
        slot.refreshes += 1;
        slot.rematerialized += stat.rematerialized as u64;
        slot.recomputed += stat.recomputed as u64;
        slot.last_nanos = stat.duration.as_nanos().min(u64::MAX as u128) as u64;
        slot.hist.record(stat.duration);
    }

    /// Records one live `CreateView` DDL publish.
    pub fn record_view_created(&self) {
        self.views_created.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one live `DropView` DDL publish.
    pub fn record_view_dropped(&self) {
        self.views_dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Records catalog migrations (creates + drops) initiated by the
    /// background advisor, as opposed to client-issued DDL — the
    /// `--expect-adaptation` CI gate asserts this is non-zero.
    pub fn record_advisor_migrations(&self, migrations: usize) {
        self.advisor_migrations
            .fetch_add(migrations as u64, Ordering::Relaxed);
    }

    /// Attributes one served query to the materialized view that
    /// answered it: the per-[`ViewId`] benefit counter the advisor
    /// weighs against refresh cost when deciding which views earn
    /// their keep.
    pub fn record_view_benefit(&self, id: ViewId, name: &str, latency: Duration) {
        let mut benefits = self.benefits.lock().expect("benefit metrics poisoned");
        let slot = match benefits.iter_mut().find(|s| s.id == id) {
            Some(slot) => slot,
            None => {
                benefits.push(BenefitSlot {
                    id,
                    name: name.to_string(),
                    answered: 0,
                    total_nanos: 0,
                });
                benefits.last_mut().expect("just pushed")
            }
        };
        slot.answered += 1;
        slot.total_nanos += latency.as_nanos().min(u64::MAX as u128) as u64;
    }

    /// Logs the normalized shape of a query the planner sent to the
    /// base graph — no materialized view could answer it. Shapes
    /// accumulate hit counts under their normalized plan key (capped
    /// at 128 distinct shapes); the advisor drains them as
    /// the workload evidence for *creating* views.
    pub fn record_miss_shape(&self, key: &str, query: &Query, latency: Duration) {
        let mut misses = self.misses.lock().expect("miss log poisoned");
        if let Some(slot) = misses.iter_mut().find(|s| s.key == key) {
            slot.count += 1;
            slot.total_nanos += latency.as_nanos().min(u64::MAX as u128) as u64;
        } else if misses.len() < MISS_LOG_CAP {
            misses.push(MissSlot {
                key: key.to_string(),
                query: query.clone(),
                count: 1,
                total_nanos: latency.as_nanos().min(u64::MAX as u128) as u64,
            });
        }
    }

    /// Takes the accumulated miss log, leaving it empty — each advisor
    /// tick consumes one window of misses, so stale shapes from a
    /// drifted-away workload phase do not haunt later decisions.
    pub fn drain_misses(&self) -> Vec<MissedQuery> {
        let mut misses = self.misses.lock().expect("miss log poisoned");
        misses
            .drain(..)
            .map(|s| MissedQuery {
                query: s.query,
                count: s.count,
                total: Duration::from_nanos(s.total_nanos),
            })
            .collect()
    }

    /// A point-in-time copy of the per-view benefit counters, in
    /// first-answer order.
    pub fn view_benefits(&self) -> Vec<ViewBenefit> {
        let benefits = self.benefits.lock().expect("benefit metrics poisoned");
        benefits
            .iter()
            .map(|s| ViewBenefit {
                id: s.id,
                name: s.name.clone(),
                answered: s.answered,
                serve_total: Duration::from_nanos(s.total_nanos),
            })
            .collect()
    }

    /// Records one slot compaction and the id slots (vertex + edge,
    /// live + dead capacity before minus after) it reclaimed.
    pub fn record_compaction(&self, reclaimed: usize) {
        self.compactions_run.fetch_add(1, Ordering::Relaxed);
        self.slots_reclaimed
            .fetch_add(reclaimed as u64, Ordering::Relaxed);
    }

    /// Records one applied write batch: how many deltas it merged, how
    /// long apply+publish took, and the refresh lag (enqueue of the
    /// oldest delta in the batch → visibility to readers).
    pub fn record_refresh(&self, deltas: usize, apply: Duration, lag: Duration) {
        self.deltas_applied
            .fetch_add(deltas as u64, Ordering::Relaxed);
        self.batches_published.fetch_add(1, Ordering::Relaxed);
        self.apply_latency.record(apply);
        self.apply_total_nanos
            .fetch_add(apply.as_nanos() as u64, Ordering::Relaxed);
        self.last_refresh_nanos
            .store(apply.as_nanos() as u64, Ordering::Relaxed);
        let lag = lag.as_nanos() as u64;
        self.last_lag_nanos.store(lag, Ordering::Relaxed);
        self.max_lag_nanos.fetch_max(lag, Ordering::Relaxed);
    }

    /// The query-latency histogram (for exposition and merging).
    pub fn query_latency(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// The per-batch apply+publish latency histogram. The sharded
    /// report merges each shard's apply histogram through
    /// [`LatencyHistogram::merge`] for true cross-shard quantiles.
    pub fn apply_latency(&self) -> &LatencyHistogram {
        &self.apply_latency
    }

    /// A point-in-time per-view breakdown, in first-refresh order.
    pub fn view_metrics(&self) -> Vec<ViewMetrics> {
        let views = self.per_view.lock().expect("per-view metrics poisoned");
        views
            .iter()
            .map(|s| ViewMetrics {
                name: s.name.clone(),
                level: s.level,
                refreshes: s.refreshes,
                rematerialized: s.rematerialized,
                recomputed: s.recomputed,
                refresh_p50: s.hist.quantile(0.50),
                refresh_p99: s.hist.quantile(0.99),
                refresh_total: s.hist.sum(),
                last_refresh: Duration::from_nanos(s.last_nanos),
            })
            .collect()
    }

    /// **The** report constructor: a point-in-time copy of every
    /// counter, with derived quantiles, plus the context only the
    /// owning engine has — the published epoch, the plan cache, and the
    /// current queue depth. Both `Engine` and `ShardedEngine` build
    /// their reports through this one path, so the stitching of
    /// `epoch`/`plan_cache_*` cannot drift between them (it used to be
    /// duplicated fix-up code in each engine).
    pub fn report_with(
        &self,
        epoch: u64,
        cache: &crate::plan_cache::PlanCache,
        queue_depth: usize,
    ) -> MetricsReport {
        let mut r = self.base_report();
        r.epoch = epoch;
        r.plan_cache_hits = cache.hits();
        r.plan_cache_misses = cache.misses();
        r.queue_depth = queue_depth as u64;
        r
    }

    /// The unstitched counter copy behind [`Metrics::report_with`];
    /// `epoch`, `plan_cache_*`, and `queue_depth` are zero here.
    fn base_report(&self) -> MetricsReport {
        MetricsReport {
            queries: self.queries.load(Ordering::Relaxed),
            query_errors: self.query_errors.load(Ordering::Relaxed),
            p50: self.latency.quantile(0.50),
            p99: self.latency.quantile(0.99),
            apply_p50: self.apply_latency.quantile(0.50),
            apply_p99: self.apply_latency.quantile(0.99),
            deltas_applied: self.deltas_applied.load(Ordering::Relaxed),
            deltas_rejected: self.deltas_rejected.load(Ordering::Relaxed),
            deltas_backpressured: self.deltas_backpressured.load(Ordering::Relaxed),
            deltas_stale_rejected: self.deltas_stale_rejected.load(Ordering::Relaxed),
            retractions_applied: self.retractions_applied.load(Ordering::Relaxed),
            views_refreshed: self.views_refreshed.load(Ordering::Relaxed),
            views_rematerialized: self.views_rematerialized.load(Ordering::Relaxed),
            views_created: self.views_created.load(Ordering::Relaxed),
            views_dropped: self.views_dropped.load(Ordering::Relaxed),
            advisor_migrations: self.advisor_migrations.load(Ordering::Relaxed),
            compactions_run: self.compactions_run.load(Ordering::Relaxed),
            slots_reclaimed: self.slots_reclaimed.load(Ordering::Relaxed),
            batches_published: self.batches_published.load(Ordering::Relaxed),
            apply_total: Duration::from_nanos(self.apply_total_nanos.load(Ordering::Relaxed)),
            last_refresh: Duration::from_nanos(self.last_refresh_nanos.load(Ordering::Relaxed)),
            last_refresh_lag: Duration::from_nanos(self.last_lag_nanos.load(Ordering::Relaxed)),
            max_refresh_lag: Duration::from_nanos(self.max_lag_nanos.load(Ordering::Relaxed)),
            epoch: 0,
            plan_cache_hits: 0,
            plan_cache_misses: 0,
            queue_depth: 0,
            per_view: self.view_metrics(),
            view_benefits: self.view_benefits(),
        }
    }
}

/// Per-view query-side benefit: how many queries a materialized view
/// answered and the latency they cost — the advisor's evidence that a
/// view earns its refresh bill.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewBenefit {
    /// The view's stable catalog handle.
    pub id: ViewId,
    /// The view's display name at the time it first answered.
    pub name: String,
    /// Queries this view's rewritten plan answered.
    pub answered: u64,
    /// Total latency of those queries.
    pub serve_total: Duration,
}

/// One drained miss-log entry: a normalized query shape the planner
/// could only answer from the base graph, with how often (and how
/// expensively) it recurred in the window.
#[derive(Debug, Clone)]
pub struct MissedQuery {
    /// The (normalized-equivalent) query, replayable through
    /// enumeration and selection.
    pub query: Query,
    /// Times this shape was served from the base graph in the window.
    pub count: u64,
    /// Total base-graph latency those servings cost.
    pub total: Duration,
}

/// Per-view dimensional metrics: one row per catalog view, accumulated
/// across publishes — the input signal for workload-adaptive view
/// selection (which views earn their keep) and refresh-cost analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewMetrics {
    /// The view's display name (e.g. `connector:JOB_TO_JOB_2_HOP`).
    pub name: String,
    /// The refresh-DAG level the view last ran in.
    pub level: usize,
    /// Publishes that refreshed this view.
    pub refreshes: u64,
    /// Of those, full scratch re-materializations.
    pub rematerialized: u64,
    /// Total delta size: units of incremental work (sources / vertices
    /// recomputed) across all refreshes.
    pub recomputed: u64,
    /// Median per-publish refresh time (log-bucket upper bound).
    pub refresh_p50: Duration,
    /// 99th-percentile per-publish refresh time.
    pub refresh_p99: Duration,
    /// Total wall-clock spent refreshing this view.
    pub refresh_total: Duration,
    /// Duration of the most recent refresh.
    pub last_refresh: Duration,
}

/// A point-in-time snapshot of the engine's metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReport {
    /// Queries served successfully.
    pub queries: u64,
    /// Queries that returned an error.
    pub query_errors: u64,
    /// Median query latency (log-bucket upper bound).
    pub p50: Duration,
    /// 99th-percentile query latency (log-bucket upper bound).
    pub p99: Duration,
    /// Median per-batch apply+publish latency. In a
    /// `ShardedMetricsReport` this is the **merged** cross-shard
    /// distribution (see [`LatencyHistogram::merge`]), not the
    /// coordinator's own.
    pub apply_p50: Duration,
    /// 99th-percentile per-batch apply+publish latency (merged
    /// cross-shard in a `ShardedMetricsReport`).
    pub apply_p99: Duration,
    /// Individual deltas applied by the write path.
    pub deltas_applied: u64,
    /// Deltas dropped as invalid (dangling or tombstoned references).
    pub deltas_rejected: u64,
    /// Submissions refused because the bounded delta queue was full.
    pub deltas_backpressured: u64,
    /// Slot-addressed deltas refused as stale — `based_on` older than
    /// the retained compaction-remap history (`StaleEpoch`).
    pub deltas_stale_rejected: u64,
    /// Retraction operations (edge or vertex) in applied batches.
    pub retractions_applied: u64,
    /// Views refreshed by the per-publish refresh DAG (delta-driven).
    pub views_refreshed: u64,
    /// Of the refreshed views, how many fell back to a full scratch
    /// re-materialization (a composed view refreshed without its
    /// upstream connector in the catalog). Stays 0 on incremental-safe
    /// workloads — the `--expect-incremental` CI smoke gates on it.
    pub views_rematerialized: u64,
    /// Views created by live DDL (`CreateView` publishes).
    pub views_created: u64,
    /// Views dropped by live DDL (`DropView` publishes).
    pub views_dropped: u64,
    /// Catalog migrations (creates + drops) issued by the background
    /// advisor, as opposed to client DDL.
    pub advisor_migrations: u64,
    /// Slot compactions run (each publishes its own epoch).
    pub compactions_run: u64,
    /// Total id slots (vertex + edge capacity) reclaimed by
    /// compactions.
    pub slots_reclaimed: u64,
    /// Write batches published (snapshot epochs minted).
    pub batches_published: u64,
    /// Cumulative apply+publish time across all batches — the total
    /// wall-clock the write path spent ingesting. The `serve_sharded`
    /// experiment compares this figure per shard against the
    /// single-engine total to show the write path parallelizing.
    pub apply_total: Duration,
    /// Apply+publish duration of the most recent batch.
    pub last_refresh: Duration,
    /// Enqueue→visibility lag of the most recent batch.
    pub last_refresh_lag: Duration,
    /// Worst enqueue→visibility lag observed.
    pub max_refresh_lag: Duration,
    /// Epoch of the currently published snapshot.
    pub epoch: u64,
    /// Plan-cache hits.
    pub plan_cache_hits: u64,
    /// Plan-cache misses.
    pub plan_cache_misses: u64,
    /// Deltas waiting in the bounded queue at report time.
    pub queue_depth: u64,
    /// Per-view dimensional breakdown (empty until the first publish
    /// refreshes a catalog view).
    pub per_view: Vec<ViewMetrics>,
    /// Per-view query-side benefit counters (empty until a view
    /// answers its first query).
    pub view_benefits: Vec<ViewBenefit>,
}

impl MetricsReport {
    /// `hits / (hits + misses)`, or 0.0 before any lookup.
    pub fn plan_cache_hit_rate(&self) -> f64 {
        let total = self.plan_cache_hits + self.plan_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.plan_cache_hits as f64 / total as f64
        }
    }
}

impl fmt::Display for MetricsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "queries served     {} ({} errors)",
            self.queries, self.query_errors
        )?;
        writeln!(
            f,
            "query latency      p50 {:?}  p99 {:?}",
            self.p50, self.p99
        )?;
        writeln!(
            f,
            "plan cache         {} hits / {} misses ({:.0}% hit rate)",
            self.plan_cache_hits,
            self.plan_cache_misses,
            100.0 * self.plan_cache_hit_rate()
        )?;
        writeln!(
            f,
            "write path         {} deltas in {} batches (epoch {}, {} rejected, {} backpressured, {} stale)",
            self.deltas_applied,
            self.batches_published,
            self.epoch,
            self.deltas_rejected,
            self.deltas_backpressured,
            self.deltas_stale_rejected
        )?;
        writeln!(f, "retractions        {} applied", self.retractions_applied)?;
        writeln!(
            f,
            "view refresh       {} refreshed, {} rematerialized",
            self.views_refreshed, self.views_rematerialized
        )?;
        writeln!(
            f,
            "catalog ddl        {} created, {} dropped ({} advisor migrations)",
            self.views_created, self.views_dropped, self.advisor_migrations
        )?;
        writeln!(
            f,
            "compaction         {} runs, {} slots reclaimed",
            self.compactions_run, self.slots_reclaimed
        )?;
        writeln!(
            f,
            "apply latency      p50 {:?}  p99 {:?} (queue depth {})",
            self.apply_p50, self.apply_p99, self.queue_depth
        )?;
        write!(
            f,
            "refresh            last {:?} (total {:?}, lag {:?}, max lag {:?})",
            self.last_refresh, self.apply_total, self.last_refresh_lag, self.max_refresh_lag
        )?;
        for v in &self.per_view {
            write!(
                f,
                "\n  view {:<40} level {} refreshes {:<6} p50 {:?} p99 {:?} recomputed {} remat {}",
                v.name,
                v.level,
                v.refreshes,
                v.refresh_p50,
                v.refresh_p99,
                v.recomputed,
                v.rematerialized
            )?;
        }
        for b in &self.view_benefits {
            write!(
                f,
                "\n  benefit {:<37} {} answered {} (total {:?})",
                b.name, b.id, b.answered, b.serve_total
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = LatencyHistogram::default();
        for micros in [1u64, 10, 100, 100, 100, 1000] {
            h.record(Duration::from_micros(micros));
        }
        assert_eq!(h.count(), 6);
        let p50 = h.quantile(0.5);
        // the median sample is 100µs; the log-bucket upper bound is
        // within 2x above it
        assert!(p50 >= Duration::from_micros(100) && p50 <= Duration::from_micros(200));
        assert!(h.quantile(1.0) >= Duration::from_micros(1000));
        assert_eq!(LatencyHistogram::default().quantile(0.5), Duration::ZERO);
    }

    #[test]
    fn empty_histogram_reports_zero_quantiles() {
        // regression: an idle run must print a p99 of zero, not the
        // `u64::MAX`-nanoseconds sentinel (~584 years)
        let h = LatencyHistogram::default();
        assert_eq!(h.count(), 0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Duration::ZERO, "q={q}");
        }
        let idle = Metrics::new().base_report();
        assert_eq!(idle.p50, Duration::ZERO);
        assert_eq!(idle.p99, Duration::ZERO);
    }

    #[test]
    fn merge_combines_distributions_exactly() {
        let a = LatencyHistogram::default();
        let b = LatencyHistogram::default();
        for micros in [1u64, 10, 100] {
            a.record(Duration::from_micros(micros));
        }
        for micros in [1000u64, 1000, 10_000] {
            b.record(Duration::from_micros(micros));
        }
        let merged = LatencyHistogram::default();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged.count(), 6);
        assert_eq!(merged.sum(), a.sum() + b.sum());
        // bucket-for-bucket the merge is the sum of the inputs
        let (ca, cb, cm) = (a.bucket_counts(), b.bucket_counts(), merged.bucket_counts());
        for i in 0..BUCKETS {
            assert_eq!(cm[i], ca[i] + cb[i], "bucket {i}");
        }
        // quantiles come from the combined distribution: the median of
        // {1µs,10µs,100µs,1ms,1ms,10ms} sits in the 100µs bucket, above
        // a's own median bucket
        assert!(merged.quantile(0.5) >= Duration::from_micros(100));
        assert!(merged.quantile(0.5) < Duration::from_millis(1));
        assert!(merged.quantile(1.0) >= Duration::from_millis(10));
        // merging an empty histogram is a no-op
        merged.merge(&LatencyHistogram::default());
        assert_eq!(merged.count(), 6);
    }

    #[test]
    fn quantile_survives_count_ahead_of_buckets() {
        // `record` bumps the bucket before the count, but a reader can
        // still observe `count` ahead of the bucket stores (Relaxed
        // atomics, no ordering between threads). Simulate the torn read
        // directly: count says two samples, buckets hold one.
        let h = LatencyHistogram::default();
        h.record(Duration::from_micros(10));
        h.count.fetch_add(1, Ordering::Relaxed);
        assert_eq!(h.count(), 2);
        // q low enough to land on the real sample still reports it...
        assert!(h.quantile(0.25) >= Duration::from_micros(10));
        // ...while the fallthrough (target beyond every stored bucket)
        // reports zero instead of a u64::MAX-nanoseconds sentinel
        assert_eq!(h.quantile(1.0), Duration::ZERO);
    }

    #[test]
    fn per_view_metrics_accumulate_by_name() {
        use kaskade_core::ViewId;
        let m = Metrics::new();
        let stat = |view: u32, level, nanos: u64, recomputed, remat| ViewRefreshStat {
            view: ViewId(view),
            level,
            duration: Duration::from_nanos(nanos),
            recomputed,
            rematerialized: remat,
        };
        m.record_per_view("connector:A", &stat(0, 0, 1_000, 7, false));
        m.record_per_view("connector:A", &stat(0, 0, 3_000, 5, true));
        m.record_per_view("compose:B", &stat(1, 1, 500, 2, false));
        let views = m.view_metrics();
        assert_eq!(views.len(), 2);
        let a = &views[0];
        assert_eq!(a.name, "connector:A");
        assert_eq!((a.refreshes, a.rematerialized, a.recomputed), (2, 1, 12));
        assert_eq!(a.last_refresh, Duration::from_nanos(3_000));
        assert_eq!(a.refresh_total, Duration::from_nanos(4_000));
        assert!(a.refresh_p99 >= Duration::from_nanos(3_000));
        let b = &views[1];
        assert_eq!((b.name.as_str(), b.level, b.refreshes), ("compose:B", 1, 1));
        // the per-view rows ride along in the full report and Display
        let r = m.base_report();
        assert_eq!(r.per_view, views);
        assert!(r.to_string().contains("view connector:A"), "{r}");
    }

    #[test]
    fn benefit_counters_and_miss_log_feed_the_advisor() {
        use kaskade_core::ViewId;
        let m = Metrics::new();
        m.record_view_benefit(ViewId(0), "connector:A", Duration::from_micros(10));
        m.record_view_benefit(ViewId(0), "connector:A", Duration::from_micros(30));
        m.record_view_benefit(ViewId(2), "connector:B", Duration::from_micros(5));
        let benefits = m.view_benefits();
        assert_eq!(benefits.len(), 2);
        assert_eq!(benefits[0].id, ViewId(0));
        assert_eq!(benefits[0].answered, 2);
        assert_eq!(benefits[0].serve_total, Duration::from_micros(40));

        let q = kaskade_query::parse(
            "SELECT COUNT(*) FROM (MATCH (a:Job)-[:WRITES_TO]->(f:File) RETURN a AS A)",
        )
        .unwrap();
        m.record_miss_shape("k1", &q, Duration::from_micros(100));
        m.record_miss_shape("k1", &q, Duration::from_micros(100));
        m.record_miss_shape("k2", &q, Duration::from_micros(7));
        let drained = m.drain_misses();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].count, 2);
        assert_eq!(drained[0].total, Duration::from_micros(200));
        // draining empties the window
        assert!(m.drain_misses().is_empty());

        m.record_view_created();
        m.record_view_created();
        m.record_view_dropped();
        m.record_advisor_migrations(3);
        let r = m.base_report();
        assert_eq!(r.views_created, 2);
        assert_eq!(r.views_dropped, 1);
        assert_eq!(r.advisor_migrations, 3);
        assert_eq!(r.view_benefits, benefits);
        let s = r.to_string();
        assert!(s.contains("catalog ddl"), "{s}");
        assert!(s.contains("benefit connector:A"), "{s}");
    }

    #[test]
    fn miss_log_caps_distinct_shapes() {
        let m = Metrics::new();
        let q = kaskade_query::parse(
            "SELECT COUNT(*) FROM (MATCH (a:Job)-[:WRITES_TO]->(f:File) RETURN a AS A)",
        )
        .unwrap();
        for i in 0..(MISS_LOG_CAP + 10) {
            m.record_miss_shape(&format!("k{i}"), &q, Duration::from_micros(1));
        }
        // known shapes still count past the cap
        m.record_miss_shape("k0", &q, Duration::from_micros(1));
        let drained = m.drain_misses();
        assert_eq!(drained.len(), MISS_LOG_CAP);
        assert_eq!(drained[0].count, 2);
    }

    #[test]
    fn compaction_counters_accumulate() {
        let m = Metrics::new();
        m.record_compaction(120);
        m.record_compaction(40);
        let r = m.base_report();
        assert_eq!(r.compactions_run, 2);
        assert_eq!(r.slots_reclaimed, 160);
        assert!(r.to_string().contains("compaction"));
    }

    #[test]
    fn refresh_metrics_track_max_lag() {
        let m = Metrics::new();
        m.record_refresh(3, Duration::from_millis(2), Duration::from_millis(5));
        m.record_refresh(1, Duration::from_millis(1), Duration::from_millis(3));
        let r = m.base_report();
        assert_eq!(r.deltas_applied, 4);
        assert_eq!(r.batches_published, 2);
        assert_eq!(r.apply_total, Duration::from_millis(3));
        assert_eq!(r.max_refresh_lag, Duration::from_millis(5));
        assert_eq!(r.last_refresh_lag, Duration::from_millis(3));
    }

    #[test]
    fn report_displays_every_section() {
        let m = Metrics::new();
        m.record_query(Duration::from_micros(50));
        m.record_view_refresh(5, 1);
        let s = m.base_report().to_string();
        assert!(s.contains("5 refreshed, 1 rematerialized"), "{s}");
        for needle in [
            "queries served",
            "plan cache",
            "write path",
            "view refresh",
            "refresh",
        ] {
            assert!(s.contains(needle), "missing `{needle}` in:\n{s}");
        }
    }
}
