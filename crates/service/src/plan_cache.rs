//! The per-epoch plan cache.
//!
//! Planning is the expensive part of the read path: every [`plan`] call
//! runs the Prolog view enumerator over the query (§IV) before costing
//! rewrites. A serving workload repeats a small set of query shapes at
//! high rates, so the engine memoizes `plan()` results keyed by
//! `(epoch, normalized query)`.
//!
//! Keys are **alpha-normalized**: pattern variables are renamed to
//! `$0, $1, ...` in first-occurrence order, so queries that differ only
//! in variable spelling (`MATCH (a:Job)...` vs `MATCH (x:Job)...` with
//! the same `AS` output aliases) share one cache entry. Output aliases,
//! labels, predicates, and literals stay verbatim — they change the
//! result, so they must key separately.
//!
//! Epochs key the cache because a publish can change the optimal plan
//! (a view was refreshed or its cost moved); entries from superseded
//! epochs are pruned after each publish, with a one-epoch grace window
//! for readers still draining an old snapshot.
//!
//! [`plan`]: kaskade_core::Snapshot::plan

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use kaskade_core::PlannedQuery;
use kaskade_query::{GraphPattern, Query};

/// Renames `name` through the first-occurrence map, allocating the next
/// canonical `$i` on first sight.
fn canon(name: &mut String, map: &mut HashMap<String, String>, next: &mut usize) {
    let canonical = map.entry(std::mem::take(name)).or_insert_with(|| {
        let c = format!("${next}");
        *next += 1;
        c
    });
    *name = canonical.clone();
}

fn normalize_pattern(p: &mut GraphPattern) {
    let mut map = HashMap::new();
    let mut next = 0usize;
    for n in &mut p.nodes {
        canon(&mut n.var, &mut map, &mut next);
    }
    for e in &mut p.edges {
        canon(&mut e.src, &mut map, &mut next);
        canon(&mut e.dst, &mut map, &mut next);
    }
    for (var, _alias) in &mut p.returns {
        canon(var, &mut map, &mut next);
    }
}

/// The cache key of a query: its AST with pattern variables renamed to
/// `$0, $1, ...` in first-occurrence order, rendered canonically.
/// Alpha-equivalent queries (same structure, same output aliases,
/// different pattern-variable spellings) produce identical keys.
pub fn plan_key(query: &Query) -> String {
    let mut q = query.clone();
    if let Some(p) = q.pattern_mut() {
        normalize_pattern(p);
    }
    format!("{q:?}")
}

/// A concurrent memo of `plan()` results keyed by epoch and
/// [`plan_key`], with hit/miss counters. See the [module docs](self).
///
/// Internally a map of per-epoch maps, so probes borrow the caller's
/// key (no allocation) and publish-time maintenance moves whole epoch
/// maps instead of rebuilding tuples. Probes take a short mutex; the
/// critical section is one hash lookup plus an `Arc` clone. Lock
/// poisoning is recovered from, not propagated: every critical section
/// leaves the map structurally valid, so a reader thread that panics
/// mid-probe must not wedge every other reader and the writer with it.
#[derive(Debug, Default)]
pub struct PlanCache {
    plans: Mutex<HashMap<u64, HashMap<String, Arc<PlannedQuery>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up the plan for `key` at `epoch`, counting a hit or miss.
    pub fn get(&self, epoch: u64, key: &str) -> Option<Arc<PlannedQuery>> {
        let found = self
            .plans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&epoch)
            .and_then(|by_key| by_key.get(key))
            .cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores the plan for `key` at `epoch` (last writer wins; racing
    /// planners compute identical plans, so overwrites are benign).
    pub fn insert(&self, epoch: u64, key: String, plan: Arc<PlannedQuery>) {
        self.plans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entry(epoch)
            .or_default()
            .insert(key, plan);
    }

    /// Drops entries more than one epoch older than `current`: readers
    /// may still be draining epoch `current - 1`, anything older is
    /// unreachable (the cell only hands out the latest snapshot).
    pub fn prune_below(&self, current: u64) {
        self.plans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .retain(|e, _| e + 1 >= current);
    }

    /// Carries every older epoch's plans forward to epoch `to`, then
    /// prunes superseded entries. The write path refreshes view
    /// *contents* but never changes the set of materialized views, so a
    /// cached rewrite remains valid across publishes — only its cost
    /// estimate goes stale, and serving a slightly stale plan beats
    /// re-running Prolog enumeration after every write batch. Without
    /// this, an active writer would invalidate the entire cache on
    /// every publish and the hit rate would pin at zero. (Carrying from
    /// *every* older epoch, not just `to - 1`, matters: a slow planner
    /// can insert at an epoch superseded while it planned.)
    pub fn promote(&self, to: u64) {
        let mut plans = self.plans.lock().unwrap_or_else(|e| e.into_inner());
        let mut target = plans.remove(&to).unwrap_or_default();
        let mut older: Vec<u64> = plans.keys().filter(|&&e| e < to).copied().collect();
        older.sort_unstable_by(|a, b| b.cmp(a)); // newest wins collisions
        for epoch in older {
            // keep `to - 1` intact as a grace window for readers still
            // draining the previous snapshot; drop everything older
            let map = if epoch + 1 >= to {
                plans.get(&epoch).cloned().unwrap_or_default()
            } else {
                plans.remove(&epoch).unwrap_or_default()
            };
            for (key, plan) in map {
                target.entry(key).or_insert(plan);
            }
        }
        plans.insert(to, target);
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// `hits / (hits + misses)`, or 0.0 before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = (self.hits(), self.misses());
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Number of cached plans (all epochs).
    pub fn len(&self) -> usize {
        self.plans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .map(HashMap::len)
            .sum()
    }

    /// Whether the cache holds no plans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaskade_query::parse;

    #[test]
    fn alpha_equivalent_queries_share_a_key() {
        let a = parse("SELECT COUNT(*) FROM (MATCH (a:Job)-[:WRITES_TO]->(f:File) RETURN a AS J)")
            .unwrap();
        let b = parse("SELECT COUNT(*) FROM (MATCH (x:Job)-[:WRITES_TO]->(y:File) RETURN x AS J)")
            .unwrap();
        assert_eq!(plan_key(&a), plan_key(&b));
    }

    #[test]
    fn alias_and_label_changes_key_separately() {
        let a = parse("SELECT COUNT(*) FROM (MATCH (a:Job)-[:WRITES_TO]->(f:File) RETURN a AS J)")
            .unwrap();
        let alias =
            parse("SELECT COUNT(*) FROM (MATCH (a:Job)-[:WRITES_TO]->(f:File) RETURN a AS K)")
                .unwrap();
        let label =
            parse("SELECT COUNT(*) FROM (MATCH (a:File)-[:WRITES_TO]->(f:File) RETURN a AS J)")
                .unwrap();
        assert_ne!(plan_key(&a), plan_key(&alias));
        assert_ne!(plan_key(&a), plan_key(&label));
    }

    #[test]
    fn counters_and_pruning() {
        let cache = PlanCache::new();
        let q = parse("MATCH (a:Job)-[:WRITES_TO]->(f:File) RETURN a AS J").unwrap();
        let key = plan_key(&q);
        assert!(cache.get(3, &key).is_none());
        cache.insert(
            3,
            key.clone(),
            Arc::new(PlannedQuery {
                query: q,
                view_id: None,
                estimated_cost: 1.0,
            }),
        );
        assert!(cache.get(3, &key).is_some());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert!((cache.hit_rate() - 0.5).abs() < 1e-9);
        // epoch 3 survives a publish to 4 (grace window), dies at 5
        cache.prune_below(4);
        assert_eq!(cache.len(), 1);
        cache.prune_below(5);
        assert!(cache.is_empty());
    }

    #[test]
    fn poisoned_cache_lock_recovers() {
        // a reader that panics while holding the cache mutex poisons
        // it; every subsequent probe must recover instead of wedging
        // the whole engine behind `PoisonError` panics
        let cache = PlanCache::new();
        let q = parse("MATCH (a:Job)-[:WRITES_TO]->(f:File) RETURN a AS J").unwrap();
        let key = plan_key(&q);
        cache.insert(
            0,
            key.clone(),
            Arc::new(PlannedQuery {
                query: q,
                view_id: None,
                estimated_cost: 1.0,
            }),
        );
        let poisoner = std::thread::scope(|s| {
            s.spawn(|| {
                let _guard = cache.plans.lock().unwrap();
                panic!("poison the plan cache");
            })
            .join()
        });
        assert!(poisoner.is_err(), "the poisoning thread panicked");
        // the cache still serves probes, inserts, and maintenance
        assert!(cache.get(0, &key).is_some());
        cache.promote(1);
        assert!(cache.get(1, &key).is_some());
        cache.prune_below(5);
        assert!(cache.is_empty());
    }

    #[test]
    fn promote_carries_plans_across_epochs() {
        let cache = PlanCache::new();
        let q = parse("MATCH (a:Job)-[:WRITES_TO]->(f:File) RETURN a AS J").unwrap();
        let key = plan_key(&q);
        cache.insert(
            0,
            key.clone(),
            Arc::new(PlannedQuery {
                query: q,
                view_id: None,
                estimated_cost: 1.0,
            }),
        );
        cache.promote(1);
        assert!(cache.get(1, &key).is_some(), "plan carried to epoch 1");
        cache.promote(2);
        cache.promote(3);
        assert!(cache.get(3, &key).is_some(), "plans survive every publish");
        // the stale original epochs are pruned (grace window of one)
        assert_eq!(cache.len(), 2);
    }
}
