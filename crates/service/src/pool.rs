//! The persistent worker pool behind steady-state serving parallelism.
//!
//! Before this pool, every parallel moment in the serving runtime paid
//! a thread spawn: `execute_anchored` scattered per-shard queries on a
//! `thread::scope`, each publish's view refresh spawned per DAG level,
//! and partitioned connector maintenance spawned per bucket. Spawns
//! cost tens of microseconds plus a page-faulting stack — visible at
//! read p99 and paid once per query per shard.
//!
//! [`WorkerPool`] replaces all of it: a fixed set of threads created
//! once per engine, parked on a condvar when idle, fed jobs through an
//! injector queue. It implements [`ParallelExec`], so the graph-layer
//! merge publish, the refresh DAG, and the shard scatter all share one
//! pool — zero thread spawns in steady-state serving (asserted by the
//! [`kaskade_graph::thread_spawns`] counter in tests).
//!
//! The caller of [`WorkerPool::run`] *helps*: it claims task indices
//! alongside the workers rather than blocking, which both uses the
//! caller's core and makes nested `run` calls (a refresh task that
//! itself scatters) deadlock-free — a nested call's tasks can always
//! be claimed by its own caller even if every pool thread is busy.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use kaskade_graph::ParallelExec;

/// One batch of `n` index-addressed tasks pushed to the pool.
///
/// `task` is a lifetime-erased pointer to the caller's closure. This is
/// sound because [`WorkerPool::run`] does not return until all `n`
/// completions are counted, and a claim is only acted on when
/// `fetch_add` returned an index `< n` — a stale `Arc<Job>` held by a
/// late worker can only observe exhausted claims and never
/// dereferences `task` again.
struct Job {
    task: *const (dyn Fn(usize) + Sync),
    n: usize,
    next: AtomicUsize,
    done: Mutex<usize>,
    all_done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

// Safety: `task` points at a `Sync` closure; all other fields are
// atomics/locks. The raw pointer's validity window is enforced by
// `run` as described on the struct.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Claims and runs tasks until the claim space is exhausted;
    /// returns how many tasks this call executed.
    fn work(&self) -> u64 {
        let mut ran = 0;
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.n {
                return ran;
            }
            ran += 1;
            // Safety: i < n, so `run` is still blocked in its
            // completion wait and the closure is alive.
            let task = unsafe { &*self.task };
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task(i)));
            if let Err(payload) = outcome {
                let mut slot = self.panic.lock().unwrap_or_else(|e| e.into_inner());
                slot.get_or_insert(payload);
            }
            let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
            *done += 1;
            if *done == self.n {
                self.all_done.notify_all();
            }
        }
    }

    /// Blocks until every task has completed.
    fn wait_done(&self) {
        let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
        while *done < self.n {
            done = self.all_done.wait(done).unwrap_or_else(|e| e.into_inner());
        }
    }
}

struct PoolShared {
    queue: Mutex<PoolQueue>,
    work_ready: Condvar,
}

struct PoolQueue {
    jobs: VecDeque<Arc<Job>>,
    shutdown: bool,
}

/// A fixed-size persistent thread pool implementing [`ParallelExec`].
/// See the module docs for the design; see [`WorkerPool::dispatches`]
/// and [`WorkerPool::tasks_run`] for the observability counters.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    threads: Vec<std::thread::JoinHandle<()>>,
    dispatches: AtomicU64,
    tasks_run: Arc<AtomicU64>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads.len())
            .field("dispatches", &self.dispatches())
            .field("tasks_run", &self.tasks_run())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool with `threads` worker threads (clamped to at least
    /// one). These are the only threads the pool will ever create; all
    /// later parallelism is park/unpark.
    pub fn new(threads: usize) -> Arc<WorkerPool> {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(PoolQueue {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
        });
        let tasks_run = Arc::new(AtomicU64::new(0));
        let threads = (0..threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let tasks_run = Arc::clone(&tasks_run);
                std::thread::Builder::new()
                    .name(format!("kaskade-pool-{i}"))
                    .spawn(move || worker_loop(&shared, &tasks_run))
                    .expect("spawn pool worker")
            })
            .collect();
        Arc::new(WorkerPool {
            shared,
            threads,
            dispatches: AtomicU64::new(0),
            tasks_run,
        })
    }

    /// A pool sized for the machine: available parallelism minus one
    /// (the submitting thread helps), at least one.
    pub fn with_default_threads() -> Arc<WorkerPool> {
        let cores = std::thread::available_parallelism().map_or(2, |p| p.get());
        WorkerPool::new(cores.saturating_sub(1).max(1))
    }

    /// Number of worker threads (excluding helping callers).
    pub fn threads(&self) -> usize {
        self.threads.len()
    }

    /// Batches dispatched through [`ParallelExec::run`] since creation
    /// (single-task batches run inline and are not counted).
    pub fn dispatches(&self) -> u64 {
        self.dispatches.load(Ordering::Relaxed)
    }

    /// Tasks executed *by pool worker threads* (claims made by helping
    /// callers are not counted) since creation.
    pub fn tasks_run(&self) -> u64 {
        self.tasks_run.load(Ordering::Relaxed)
    }
}

fn worker_loop(shared: &PoolShared, tasks_run: &AtomicU64) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = queue.jobs.front() {
                    if job.next.load(Ordering::Relaxed) >= job.n {
                        // exhausted claim space: retire it
                        queue.jobs.pop_front();
                        continue;
                    }
                    break Some(Arc::clone(job));
                }
                if queue.shutdown {
                    break None;
                }
                queue = shared
                    .work_ready
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        let Some(job) = job else { return };
        let ran = job.work();
        tasks_run.fetch_add(ran, Ordering::Relaxed);
    }
}

impl ParallelExec for WorkerPool {
    fn run(&self, n: usize, task: &(dyn Fn(usize) + Sync)) {
        match n {
            0 => return,
            1 => {
                task(0);
                return;
            }
            _ => {}
        }
        self.dispatches.fetch_add(1, Ordering::Relaxed);
        // Erase the closure's lifetime so the job can sit in the
        // injector queue. Safety: `run` blocks in `wait_done` until
        // every task completed, outliving every dereference (see Job).
        let erased: *const (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute(task as *const _) };
        let job = Arc::new(Job {
            task: erased,
            n,
            next: AtomicUsize::new(0),
            done: Mutex::new(0),
            all_done: Condvar::new(),
            panic: Mutex::new(None),
        });
        {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.jobs.push_back(Arc::clone(&job));
        }
        self.shared.work_ready.notify_all();
        // the caller helps: it claims indices alongside the workers, so
        // a nested run() from inside a pool task cannot deadlock
        job.work();
        job.wait_done();
        let payload = job.panic.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(payload) = payload {
            std::panic::resume_unwind(payload);
        }
    }

    fn parallelism(&self) -> usize {
        self.threads.len() + 1
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn covers_every_index_across_park_unpark_cycles() {
        let pool = WorkerPool::new(3);
        for round in 0..50 {
            let n = 1 + (round % 7) as usize;
            let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
            pool.run(n, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
            // let workers park between rounds so the wakeup path is
            // exercised, not just the hot queue
            if round % 10 == 9 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        assert!(pool.dispatches() > 0);
    }

    #[test]
    fn nested_run_does_not_deadlock() {
        let pool = WorkerPool::new(1); // one worker: nesting must self-help
        let total = AtomicU32::new(0);
        let pool_ref = &*pool;
        pool.run(3, &|_| {
            pool_ref.run(4, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 12);
    }

    #[test]
    #[should_panic(expected = "pool task boom")]
    fn panics_propagate_to_the_dispatcher() {
        let pool = WorkerPool::new(2);
        pool.run(8, &|i| {
            if i == 5 {
                panic!("pool task boom");
            }
        });
    }

    #[test]
    fn drop_joins_all_threads() {
        let before = count_process_threads();
        {
            let pool = WorkerPool::new(4);
            pool.run(16, &|_| {});
            assert_eq!(pool.threads(), 4);
        }
        // after drop the worker threads must be gone
        let after = count_process_threads();
        assert!(
            after <= before,
            "pool drop leaked threads: {before} -> {after}"
        );
    }

    /// Thread count of the current process via /proc (Linux CI); falls
    /// back to 0 == 0 elsewhere.
    fn count_process_threads() -> usize {
        std::fs::read_dir("/proc/self/task").map_or(0, |d| d.count())
    }

    #[test]
    fn single_task_runs_inline_without_dispatch() {
        let pool = WorkerPool::new(2);
        let before = pool.dispatches();
        let hit = AtomicU32::new(0);
        pool.run(1, &|i| {
            assert_eq!(i, 0);
            hit.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hit.load(Ordering::Relaxed), 1);
        assert_eq!(pool.dispatches(), before);
    }
}
