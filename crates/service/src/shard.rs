//! Sharded serving: the base graph partitioned across per-shard
//! engines, with scatter/gather query execution.
//!
//! ```text
//!                        ┌─ sub-delta ─► shard Engine 0 ─┐ flush
//!  submit(delta) ─► router (split, ├─ sub-delta ─► shard Engine 1 ─┤
//!                   validate,      └─ sub-delta ─► shard Engine N ─┘
//!                   apply global)            │
//!                        ▼                   ▼ merge stats, refresh
//!                  global graph          per-shard stats   views (∥)
//!                        └───────► publish ShardedSnapshot (epoch+1)
//! ```
//!
//! ## Ownership and ghosts
//!
//! A [`Partitioner`] assigns every vertex to exactly one shard; each
//! shard's local graph retains **every vertex slot** (ids stay equal to
//! global ids, so deltas and result rows never need translation) but
//! marks non-owned slots as **ghosts**, and stores exactly the edges
//! whose *source* vertex it owns — a cross-shard edge lives on its
//! source's shard and points at a ghost of the remote endpoint. Ghosts
//! are excluded from statistics, so merging per-shard [`GraphStats`]
//! with [`GraphStats::merge`] reproduces the global statistics
//! exactly.
//!
//! ## Write path
//!
//! The router mirrors the single engine's writer loop — same bounded
//! queue, same backpressure, same batch validation — then
//! [`GraphDelta::split`]s each batch: vertex insertions broadcast
//! (ghost except on the owner), edge operations route to the source's
//! owner, vertex retractions broadcast so each shard cascades its local
//! incident edges. Shard engines apply their sub-deltas **in
//! parallel** (with the coordinator's own global apply overlapping),
//! views refresh delta-incrementally through the
//! [`RefreshDag`] (connector frontiers recompute on one worker thread
//! per shard, level-parallel across views), and the **global epoch
//! publishes only after every shard applied the batch** — a
//! [`ShardedReader`] can never observe shard states from two different
//! publishes.
//!
//! ## Read path
//!
//! Queries plan once against the global snapshot (merged statistics,
//! global view catalog, shared plan cache), then **scatter**: the same
//! pattern plan runs once per shard with the anchor scan restricted to
//! that shard's owned vertices
//! ([`PatternPlan::execute_anchored`](kaskade_query::PatternPlan::execute_anchored)),
//! and **gather** merges the sorted, deduplicated row sets before the
//! relational stage runs once. Every match is anchored at exactly one
//! owner, so cross-shard walks are counted exactly once, and because
//! pattern rows are DISTINCT the merged row set — and therefore the
//! final table, ordering included — is byte-identical to the unsharded
//! engine's (enforced by the differential proptests in
//! `tests/properties.rs`).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

use kaskade_core::{
    stage_delta, DdlOp, GraphDelta, Kaskade, KaskadeError, Partition, RefreshDag, RefreshOptions,
    RefreshReport, Snapshot, VRef,
};
use kaskade_graph::{EdgeId, ExternalIdTable, Graph, GraphStats, ParallelExec, VertexId};
use kaskade_query::{PatternPlan, PatternRows, Query, Table};

use crate::engine::{
    collect_batch, enqueue_delta, should_compact, slot_capacity, Engine, EngineConfig, Msg,
    RemapHistory, SubmitError, SubmitOpts,
};
use crate::metrics::{LatencyHistogram, Metrics, MetricsReport};
use crate::plan_cache::{plan_key, PlanCache};
use crate::pool::WorkerPool;
use crate::snapshot::EpochSnapshot;
use crate::trace::{Stage, Tracer};
use crate::wal::{Wal, WalConfig};

/// Assigns every vertex to exactly one shard. Ownership must be a pure
/// function of the vertex's id and type (both immutable for the life of
/// a slot), so a vertex's owner never changes.
pub trait Partitioner: Send + Sync + fmt::Debug {
    /// Number of shards this partitioner distributes over.
    fn shard_count(&self) -> usize;
    /// The shard owning vertex `v` of type `vtype`; must be
    /// `< shard_count()`.
    fn shard_of(&self, v: VertexId, vtype: &str) -> usize;
}

/// SplitMix64 — the same mixer the workload scripts use.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash partitioning of vertex identity (the default): spreads vertices
/// of every type uniformly, so write batches and scatter work balance
/// even under skewed type distributions.
#[derive(Debug, Clone, Copy)]
pub struct HashPartitioner {
    shards: usize,
}

impl HashPartitioner {
    /// A hash partitioner over `shards` shards (min 1).
    pub fn new(shards: usize) -> Self {
        HashPartitioner {
            shards: shards.max(1),
        }
    }
}

impl Partitioner for HashPartitioner {
    fn shard_count(&self) -> usize {
        self.shards
    }

    fn shard_of(&self, v: VertexId, _vtype: &str) -> usize {
        (mix(v.0 as u64) % self.shards as u64) as usize
    }
}

/// By-vertex-type partitioning: every vertex of one type lands on one
/// shard (hash of the type name). Colocates homogeneous scans — e.g.
/// all `Job` vertices on one shard — at the cost of balance on graphs
/// with few types.
#[derive(Debug, Clone, Copy)]
pub struct TypePartitioner {
    shards: usize,
}

impl TypePartitioner {
    /// A by-type partitioner over `shards` shards (min 1).
    pub fn new(shards: usize) -> Self {
        TypePartitioner {
            shards: shards.max(1),
        }
    }
}

impl Partitioner for TypePartitioner {
    fn shard_count(&self) -> usize {
        self.shards
    }

    fn shard_of(&self, _v: VertexId, vtype: &str) -> usize {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in vtype.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        (mix(h) % self.shards as u64) as usize
    }
}

/// Tuning knobs of the [`ShardedEngine`].
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// The vertex-ownership function (and implicitly the shard count).
    pub partitioner: Arc<dyn Partitioner>,
    /// Maximum queued deltas merged into one apply+publish cycle (same
    /// semantics as [`EngineConfig::max_batch`]).
    pub max_batch: usize,
    /// Capacity of the router's delta queue; a full queue makes
    /// [`ShardedEngine::submit`] fail fast with
    /// [`SubmitError::Backpressure`], exactly like the single engine.
    pub queue_capacity: usize,
    /// Minimum vertex count of a query's target graph before pattern
    /// matching scatters across shard worker threads. Below it the
    /// pattern executes inline on the calling thread (identical
    /// result — an unrestricted anchor scan over the same global
    /// graph), because per-query thread spawn/join would otherwise
    /// dominate trivial matches. Set 0 to always scatter.
    pub scatter_min_vertices: usize,
    /// Dead-slot fraction triggering **coordinated slot compaction**
    /// (same policy as [`EngineConfig::compact_dead_ratio`], default
    /// 0.5; `f64::INFINITY` disables). The router evaluates it on the
    /// global graph, computes one vertex remap, and orders every shard
    /// to apply that same remap before publishing the compacted global
    /// epoch — shard-local ids stay equal to global ids throughout,
    /// and each shard also drops its ghost copies of the dead slots.
    pub compact_dead_ratio: f64,
    /// The tracing subsystem shared by the router and every shard
    /// engine (each shard labels its spans `shardN`), so one flight
    /// recorder sees the whole scatter/fan-out pipeline. `None` creates
    /// a private disabled tracer.
    pub tracer: Option<Arc<Tracer>>,
    /// Worker threads of the engine-wide persistent [`WorkerPool`]
    /// (query scatter, merged publish, parallel view refresh all run on
    /// it — steady-state serving never spawns a thread). `0` sizes the
    /// pool to the machine: available parallelism minus the helping
    /// caller.
    pub pool_threads: usize,
    /// Durability: when set, the **router** appends one epoch-tagged
    /// WAL record per merged batch before the global publish (shard
    /// engines never log — the merged pre-split delta is the durable
    /// unit) and checkpoints the global state every
    /// [`WalConfig::checkpoint_every`] batches.
    /// [`ShardedEngine::recover`] restores and re-partitions on
    /// restart. `None` (the default) serves purely in memory.
    pub wal: Option<WalConfig>,
}

impl ShardedConfig {
    /// Default tuning with hash partitioning over `shards` shards.
    pub fn hash(shards: usize) -> Self {
        ShardedConfig {
            partitioner: Arc::new(HashPartitioner::new(shards)),
            max_batch: 64,
            queue_capacity: 1024,
            scatter_min_vertices: 512,
            compact_dead_ratio: 0.5,
            tracer: None,
            pool_threads: 0,
            wal: None,
        }
    }
}

/// One globally published epoch of the sharded engine: the merged
/// global read state plus the per-shard snapshots it was assembled
/// from, captured atomically at publish time.
#[derive(Debug)]
pub struct ShardedSnapshot {
    /// Monotonic global publish counter (0 = initial state).
    pub epoch: u64,
    /// The global read state: merged base graph, merged statistics,
    /// and the global view catalog. Byte-for-byte what an unsharded
    /// engine would serve.
    pub state: Snapshot,
    /// Each shard's snapshot as of this global publish. The set is
    /// captured once per publish and swapped in atomically with the
    /// global state, so a reader can never mix shard states from two
    /// different global publishes.
    pub shard_states: Vec<Arc<EpochSnapshot>>,
    /// The external-id bindings as of this global publish, in the
    /// **global** id space — `id(v) = <ext>` anchors resolve through
    /// this table and run inline on the global state (a single-slot
    /// probe has nothing to gain from a scatter). Shared, not copied:
    /// the router clones the table only on epochs that changed it.
    pub extids: Arc<ExternalIdTable>,
}

impl ShardedSnapshot {
    /// Whether this snapshot is internally coherent — the *structural*
    /// torn-publish detector: the shard edge partitions sum to the
    /// global edge count, shard-owned vertices sum to the global
    /// vertex count, and the merged per-shard statistics equal the
    /// global statistics. A shard state from a different global
    /// publish (ahead of or behind the global graph) breaks these sums
    /// for any batch that changed that shard.
    pub fn is_coherent(&self) -> bool {
        let edge_sum: usize = self
            .shard_states
            .iter()
            .map(|s| s.state.graph().edge_count())
            .sum();
        let owned_sum: usize = self
            .shard_states
            .iter()
            .map(|s| s.state.graph().owned_vertex_count())
            .sum();
        if edge_sum != self.state.graph().edge_count()
            || owned_sum != self.state.graph().vertex_count()
        {
            return false;
        }
        match GraphStats::merge(self.shard_states.iter().map(|s| s.state.stats())) {
            Some(merged) => merged == *self.state.stats(),
            None => false,
        }
    }
}

/// The single-publisher cell for [`ShardedSnapshot`]s (the sharded
/// analogue of [`crate::SnapshotCell`]).
#[derive(Debug)]
struct ShardedCell {
    epoch: AtomicU64,
    slot: RwLock<Arc<ShardedSnapshot>>,
}

impl ShardedCell {
    fn new(snapshot: ShardedSnapshot) -> Self {
        ShardedCell {
            epoch: AtomicU64::new(snapshot.epoch),
            slot: RwLock::new(Arc::new(snapshot)),
        }
    }

    fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    fn load(&self) -> Arc<ShardedSnapshot> {
        self.slot.read().unwrap_or_else(|e| e.into_inner()).clone()
    }

    fn publish(&self, snapshot: ShardedSnapshot) -> u64 {
        let mut slot = self.slot.write().unwrap_or_else(|e| e.into_inner());
        let epoch = snapshot.epoch;
        *slot = Arc::new(snapshot);
        self.epoch.store(epoch, Ordering::Release);
        epoch
    }
}

/// A per-thread read handle over the sharded engine with a cached
/// snapshot, revalidated with one atomic epoch load per query — the
/// same lock-free hot path as [`crate::Reader`], with snapshot
/// isolation **across all shards**: the cached [`ShardedSnapshot`] is
/// one atomic publish, so a reader can never mix shard states from
/// different global epochs.
#[derive(Debug, Clone)]
pub struct ShardedReader {
    cell: Arc<ShardedCell>,
    cached: Arc<ShardedSnapshot>,
}

impl ShardedReader {
    fn new(cell: Arc<ShardedCell>) -> Self {
        let cached = cell.load();
        ShardedReader { cell, cached }
    }

    /// The current global snapshot (revalidated against the publish
    /// epoch).
    pub fn snapshot(&mut self) -> &Arc<ShardedSnapshot> {
        if self.cell.epoch() != self.cached.epoch {
            self.cached = self.cell.load();
        }
        &self.cached
    }
}

/// State shared between the sharded engine handle, its readers, and
/// the router thread.
#[derive(Debug)]
struct ShardedShared {
    cell: Arc<ShardedCell>,
    cache: PlanCache,
    metrics: Metrics,
    queued: AtomicU64,
    partitioner: Arc<dyn Partitioner>,
    scatter_min_vertices: usize,
    shards: Vec<Engine>,
    tracer: Arc<Tracer>,
    pool: Arc<WorkerPool>,
    /// The router's staleness watermark (see the single engine's
    /// `Shared::oldest_supported`): slot-addressed submissions based
    /// on anything older fail fast with [`SubmitError::StaleEpoch`].
    oldest_supported: AtomicU64,
}

/// A point-in-time metrics report of the sharded engine: the router's
/// aggregate counters plus each shard engine's own report.
#[derive(Debug, Clone)]
pub struct ShardedMetricsReport {
    /// Aggregate counters: queries and latency across all readers,
    /// deltas/batches/backpressure as seen by the router, and the
    /// router's apply+publish timings (global apply, parallel view
    /// refresh, and stats merge).
    pub global: MetricsReport,
    /// Per-shard engine reports; `apply_total` here is the per-shard
    /// ingest time the `serve_sharded` experiment compares against the
    /// single-engine write path.
    pub per_shard: Vec<MetricsReport>,
}

impl ShardedMetricsReport {
    /// One formatted line per shard (ingest counters and apply total)
    /// — the per-shard half of [`Display`](fmt::Display), exposed so
    /// the CLI can append it after its own aggregate rendering without
    /// duplicating the format.
    pub fn per_shard_lines(&self) -> String {
        use fmt::Write;
        let mut out = String::new();
        for (i, shard) in self.per_shard.iter().enumerate() {
            let _ = writeln!(
                out,
                "shard {i:<2}           {} deltas in {} batches (epoch {}, apply total {:?})",
                shard.deltas_applied, shard.batches_published, shard.epoch, shard.apply_total
            );
        }
        out
    }
}

impl fmt::Display for ShardedMetricsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.global)?;
        f.write_str(&self.per_shard_lines())
    }
}

/// The sharded serving runtime: one [`Engine`] per shard, a router
/// that splits and fans out write batches, and scatter/gather query
/// execution over atomically published global epochs. See the [module
/// docs](self) for the architecture.
#[derive(Debug)]
pub struct ShardedEngine {
    shared: Arc<ShardedShared>,
    tx: mpsc::SyncSender<Msg>,
    router: Option<JoinHandle<()>>,
}

impl ShardedEngine {
    /// Serves `state` partitioned by hash over `shards` shards.
    pub fn new(state: Snapshot, shards: usize) -> Self {
        Self::with_config(state, ShardedConfig::hash(shards))
    }

    /// Serves the current state of a [`Kaskade`] instance over
    /// `shards` hash-partitioned shards.
    pub fn from_kaskade(kaskade: &Kaskade, shards: usize) -> Self {
        Self::new(kaskade.snapshot(), shards)
    }

    /// Serves `state` with explicit partitioning and tuning: partitions
    /// the base graph into per-shard engines (epoch 0 everywhere) and
    /// spawns the router worker. Panics if [`ShardedConfig::wal`] is
    /// set and the log cannot be opened — use
    /// [`ShardedEngine::try_with_config`] to handle that.
    pub fn with_config(state: Snapshot, config: ShardedConfig) -> Self {
        Self::try_with_config(state, config).expect("open write-ahead log")
    }

    /// Serves `state` with explicit partitioning and tuning, surfacing
    /// WAL-open failures instead of panicking. With
    /// [`ShardedConfig::wal`] set, fails (`AlreadyExists`) if the WAL
    /// directory already holds durable state and
    /// [`crate::WalConfig::overwrite`] is off — a fresh start must not
    /// silently wipe a previous run's log.
    pub fn try_with_config(state: Snapshot, config: ShardedConfig) -> std::io::Result<Self> {
        Self::start(state, 0, ExternalIdTable::new(), config, false)
    }

    /// Recovers from the WAL directory in [`ShardedConfig::wal`]
    /// (required): loads the latest valid checkpoint, replays the log,
    /// **re-partitions the recovered global state fresh** across the
    /// configured shards, and resumes serving — and logging — at the
    /// recovered epoch. The recovered global state is
    /// partition-independent (the differential proptests hold sharded
    /// and unsharded engines byte-identical), so a fresh ownership
    /// assignment is always internally consistent. `Ok(None)` means
    /// nothing recoverable; start fresh with
    /// [`ShardedEngine::try_with_config`].
    ///
    /// As with [`Engine::recover`]: pre-restart compaction remaps are
    /// gone, so slot-addressed deltas based on pre-restart epochs fail
    /// with [`SubmitError::StaleEpoch`] after recovery;
    /// external-id-addressed deltas are epoch-free.
    pub fn recover(config: ShardedConfig) -> std::io::Result<Option<Self>> {
        let wal = config.wal.as_ref().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "ShardedEngine::recover requires ShardedConfig.wal",
            )
        })?;
        match crate::wal::recover(&wal.dir)? {
            None => Ok(None),
            Some(r) => Self::start(r.state, r.epoch, r.extids, config, true).map(Some),
        }
    }

    /// The one constructor behind fresh starts and recovery: partitions
    /// `state` into per-shard engines, publishes it globally at
    /// `epoch`, seats the external-id table in the router, and (when
    /// configured) opens the WAL with a fresh checkpoint. `recovered`
    /// marks the post-recovery reopen, which may collapse the WAL
    /// directory's existing state into the new checkpoint; a fresh
    /// start refuses that (see [`Engine::try_with_config`]).
    fn start(
        state: Snapshot,
        epoch: u64,
        extids: ExternalIdTable,
        config: ShardedConfig,
        recovered: bool,
    ) -> std::io::Result<Self> {
        let wal = match &config.wal {
            Some(cfg) if recovered => Some(Wal::open_after_recovery(
                cfg.clone(),
                &state,
                epoch,
                &extids,
            )?),
            Some(cfg) => Some(Wal::open(cfg.clone(), &state, epoch, &extids)?),
            None => None,
        };
        let partitioner = Arc::clone(&config.partitioner);
        let n = partitioner.shard_count().max(1);
        let schema = state.schema().clone();
        let tracer = config.tracer.unwrap_or_default();
        // one persistent pool for the whole sharded runtime: the
        // router's merged publish, every shard's view refresh, and the
        // read path's query scatter all park the same fixed thread set
        let pool = match config.pool_threads {
            0 => WorkerPool::with_default_threads(),
            t => WorkerPool::new(t),
        };
        let shards: Vec<Engine> = (0..n)
            .map(|s| {
                let p = &*partitioner;
                let g = state.graph();
                let shard_graph = g.shard(&|v| p.shard_of(v, g.vertex_type(v)) == s);
                Engine::with_config(
                    Snapshot::new(shard_graph, schema.clone()),
                    EngineConfig {
                        max_batch: config.max_batch.max(1),
                        // fed only by the router, which flushes every
                        // batch — a handful of slots is plenty
                        queue_capacity: 16,
                        // shards never compact on their own: the
                        // router coordinates one global remap so
                        // shard-local ids stay equal to global ids
                        compact_dead_ratio: f64::INFINITY,
                        // one shared flight recorder across the router
                        // and every shard; the label attributes each
                        // shard engine's spans
                        tracer: Some(Arc::clone(&tracer)),
                        trace_label: format!("shard{s}"),
                        pool: Some(Arc::clone(&pool)),
                        pool_threads: 0,
                        // shards never log: the router's merged
                        // pre-split delta is the durable unit
                        wal: None,
                    },
                )
            })
            .collect();
        let shard_states: Vec<Arc<EpochSnapshot>> = shards.iter().map(|e| e.snapshot()).collect();
        // the router's authoritative ownership table, one entry per
        // vertex slot. Ownership is assigned by the partitioner when a
        // slot is created and NEVER recomputed afterwards: slot
        // compaction renumbers ids, and re-hashing a renumbered id
        // would silently disagree with where the vertex's edges
        // physically live (its ghost marks on the shards). The table
        // is compacted through the very same remaps instead, so it
        // always matches the shard ghost flags slot for slot.
        let owners: Vec<u32> = {
            let g = state.graph();
            (0..g.vertex_slots())
                .map(|i| {
                    let v = VertexId(i as u32);
                    partitioner.shard_of(v, g.vertex_type(v)) as u32
                })
                .collect()
        };
        // per-shard edge translation tables: `edge_global[s][j]` is the
        // global edge id of shard `s`'s (dense) local edge slot `j`.
        // `Graph::shard` keeps a shard's edges in preserved global
        // order, so walking the global live edges in slot order and
        // routing each to its source's owner reproduces every shard's
        // local numbering exactly. The router appends per batch and
        // rebuilds on compaction; the merged publish translates shard
        // CSR rows through these tables.
        let edge_global: Vec<Vec<EdgeId>> = {
            let g = state.graph();
            let mut tables = vec![Vec::new(); n];
            for e in g.edges() {
                tables[owners[g.edge_src(e).index()] as usize].push(e);
            }
            tables
        };
        let extids = Arc::new(extids);
        let shared = Arc::new(ShardedShared {
            cell: Arc::new(ShardedCell::new(ShardedSnapshot {
                epoch,
                state,
                shard_states,
                extids: Arc::clone(&extids),
            })),
            cache: PlanCache::new(),
            metrics: Metrics::new(),
            queued: AtomicU64::new(0),
            partitioner,
            scatter_min_vertices: config.scatter_min_vertices,
            shards,
            tracer,
            pool,
            // seeded with the start epoch: after recovery, pre-restart
            // compaction remaps are gone, so slot-addressed
            // submissions based on pre-restart epochs must fail fast
            oldest_supported: AtomicU64::new(epoch),
        });
        let (tx, rx) = mpsc::sync_channel(config.queue_capacity.max(1));
        let router_shared = Arc::clone(&shared);
        let max_batch = config.max_batch.max(1);
        let compact_dead_ratio = config.compact_dead_ratio;
        let router = std::thread::Builder::new()
            .name("kaskade-router".into())
            .spawn(move || {
                router_loop(
                    router_shared,
                    rx,
                    max_batch,
                    compact_dead_ratio,
                    owners,
                    edge_global,
                    wal,
                    extids,
                )
            })
            .expect("spawn router worker");
        Ok(ShardedEngine {
            shared,
            tx,
            router: Some(router),
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shared.shards.len()
    }

    /// The currently published global snapshot.
    pub fn snapshot(&self) -> Arc<ShardedSnapshot> {
        self.shared.cell.load()
    }

    /// The epoch of the currently published global snapshot.
    pub fn epoch(&self) -> u64 {
        self.shared.cell.epoch()
    }

    /// A per-thread read handle (the lock-free hot path).
    pub fn reader(&self) -> ShardedReader {
        ShardedReader::new(Arc::clone(&self.shared.cell))
    }

    /// Queues a delta for the router. Semantics match
    /// [`Engine::submit`]: self-referential validity is checked here,
    /// references to the base graph at apply time by the router, a
    /// full queue returns [`SubmitError::Backpressure`] with nothing
    /// enqueued, and existing-vertex ids are taken to be in the
    /// currently published epoch's id space unless
    /// [`SubmitOpts::based_on`] says otherwise — then the router
    /// rebases the delta through any coordinated slot compactions
    /// published since.
    pub fn submit(&self, delta: GraphDelta, opts: SubmitOpts) -> Result<(), SubmitError> {
        let based_on = opts.based_on.unwrap_or_else(|| self.shared.cell.epoch());
        let oldest = self.shared.oldest_supported.load(Ordering::Relaxed);
        if based_on < oldest && delta.has_slot_refs() {
            self.shared.metrics.record_stale(1);
            return Err(SubmitError::StaleEpoch {
                oldest_supported: oldest,
            });
        }
        enqueue_delta(
            &self.tx,
            &self.shared.queued,
            &self.shared.metrics,
            delta,
            based_on,
        )
    }

    /// Queues a catalog [`DdlOp`] for the router. Same semantics as
    /// [`Engine::submit_ddl`]: the op is a batch boundary — deltas
    /// queued before it publish first, then the DDL publishes as its
    /// own epoch (WAL-logged before publish, plan cache invalidated
    /// with no carry-forward). Views are materialized over the
    /// **global** graph at the coordinator — shard engines never hold
    /// catalog state — so a DDL epoch republishes the current shard
    /// states unchanged and stays coherent. Returns `false` if the
    /// engine is shutting down.
    pub fn submit_ddl(&self, op: DdlOp) -> bool {
        self.tx.send(Msg::Ddl(op)).is_ok()
    }

    /// Waits until every previously submitted delta is applied on
    /// every shard and globally published; returns the publishing
    /// epoch.
    pub fn flush(&self) -> u64 {
        let (ack_tx, ack_rx) = mpsc::channel();
        if self.tx.send(Msg::Flush(ack_tx)).is_err() {
            return self.shared.cell.epoch();
        }
        ack_rx.recv().unwrap_or_else(|_| self.shared.cell.epoch())
    }

    /// Deltas submitted but not yet globally published.
    pub fn queue_depth(&self) -> u64 {
        self.shared.queued.load(Ordering::Relaxed)
    }

    /// Plans (through the shared per-epoch plan cache) and executes
    /// `query` scatter/gather against the current global snapshot.
    pub fn execute(&self, query: &Query) -> Result<Table, KaskadeError> {
        let snap = self.shared.cell.load();
        execute_at(&self.shared, &snap, query)
    }

    /// Like [`ShardedEngine::execute`], but against the reader's
    /// cached snapshot — the zero-lock steady-state read path.
    pub fn execute_with(
        &self,
        reader: &mut ShardedReader,
        query: &Query,
    ) -> Result<Table, KaskadeError> {
        let snap = Arc::clone(reader.snapshot());
        execute_at(&self.shared, &snap, query)
    }

    /// Aggregate plus per-shard metrics. The global report's apply
    /// quantiles come from a true cross-shard histogram merge
    /// ([`LatencyHistogram::merge`]) of the router's and every shard's
    /// apply latencies — not from averaging per-shard quantiles.
    pub fn metrics(&self) -> ShardedMetricsReport {
        let mut global = self.shared.metrics.report_with(
            self.shared.cell.epoch(),
            &self.shared.cache,
            self.queue_depth() as usize,
        );
        let merged = LatencyHistogram::default();
        merged.merge(self.shared.metrics.apply_latency());
        for shard in &self.shared.shards {
            merged.merge(shard.metrics_handle().apply_latency());
        }
        global.apply_p50 = merged.quantile(0.50);
        global.apply_p99 = merged.quantile(0.99);
        ShardedMetricsReport {
            global,
            per_shard: self.shared.shards.iter().map(Engine::metrics).collect(),
        }
    }

    /// The tracing subsystem shared by the router and every shard.
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.shared.tracer
    }

    /// The persistent worker pool shared by the router, every shard
    /// engine, and the query scatter path. Its
    /// [`WorkerPool::dispatches`] counter (together with
    /// [`kaskade_graph::thread_spawns`]) is the "zero spawns in steady
    /// state" observability hook.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.shared.pool
    }

    /// The per-shard engines (for metrics exposition).
    pub(crate) fn shard_engines(&self) -> &[Engine] {
        &self.shared.shards
    }

    /// The router's live metrics block (for exposition endpoints that
    /// need raw histograms rather than a report).
    pub(crate) fn metrics_handle(&self) -> &Metrics {
        &self.shared.metrics
    }
}

impl Drop for ShardedEngine {
    fn drop(&mut self) {
        // closing the channel signals shutdown; the router drains,
        // publishes, and exits before the shard engines shut down
        let (tx, _) = mpsc::sync_channel(1);
        drop(std::mem::replace(&mut self.tx, tx));
        if let Some(router) = self.router.take() {
            let _ = router.join();
        }
    }
}

/// Plans `query` via the shared cache and executes it scatter/gather
/// against `snap`: the pattern fans out with per-shard anchor ranges,
/// the merged DISTINCT rows feed one relational stage.
fn execute_at(
    shared: &ShardedShared,
    snap: &ShardedSnapshot,
    query: &Query,
) -> Result<Table, KaskadeError> {
    // `id(v) = <ext>` point lookups: resolve through the snapshot's
    // external-id table into a pinned single-slot anchor scan and run
    // inline on the global state — a one-slot probe gains nothing from
    // scatter. Skips the view rewriter and the plan cache, and never
    // feeds the advisor's miss log.
    if let Some((stripped, anchors)) = query.split_extid_anchors() {
        let start = Instant::now();
        let mut root = shared.tracer.span(Stage::Query);
        root.set_epoch(snap.epoch);
        root.set_detail("anchored");
        return match crate::anchor::execute_anchored(
            snap.state.graph(),
            &snap.extids,
            &stripped,
            &anchors,
        ) {
            Ok(table) => {
                shared.metrics.record_query(start.elapsed());
                Ok(table)
            }
            Err(e) => {
                shared.metrics.record_query_error();
                Err(e)
            }
        };
    }
    let tracer = &shared.tracer;
    let timing = tracer.is_enabled() || tracer.slow_query_threshold().is_some();
    let start = Instant::now();
    let mut root = tracer.span(Stage::Query);
    root.set_epoch(snap.epoch);
    let root_id = root.id();
    let key = plan_key(query);
    let mut plan_time = std::time::Duration::ZERO;
    let planned = {
        let mut lookup = root.child(Stage::PlanCacheLookup);
        match shared.cache.get(snap.epoch, &key) {
            Some(plan) => {
                lookup.set_detail("hit".to_string());
                plan
            }
            None => {
                lookup.set_detail("miss".to_string());
                drop(lookup);
                let plan_span = root.child(Stage::Plan);
                let plan_start = timing.then(Instant::now);
                let plan = Arc::new(snap.state.plan(query).map_err(KaskadeError::Inference)?);
                if let Some(t) = plan_start {
                    plan_time = t.elapsed();
                }
                drop(plan_span);
                shared
                    .cache
                    .insert(snap.epoch, key.clone(), Arc::clone(&plan));
                plan
            }
        }
    };
    let target = match planned.view_id {
        Some(id) => match snap.state.catalog().get_by_id(id) {
            Some(view) => &view.graph,
            None => return Err(KaskadeError::UnknownView(id)),
        },
        None => snap.state.graph(),
    };
    let n = shared.shards.len();
    let partitioner = &*shared.partitioner;
    // set when the pattern stage hands back to the relational stage,
    // so the Relational span can be synthesized around code that runs
    // inside `execute_with_pattern`
    let pattern_done: std::cell::Cell<Option<Instant>> = std::cell::Cell::new(None);
    let result = kaskade_query::execute_with_pattern(target, &planned.query, &|pattern| {
        let plan = PatternPlan::new(target, pattern)?;
        // below the scatter threshold, per-query thread spawn/join
        // would cost more than the matching itself: run the identical
        // unrestricted plan inline instead
        if n <= 1 || target.vertex_count() < shared.scatter_min_vertices {
            let out = plan.execute(target);
            pattern_done.set(Some(Instant::now()));
            return Ok(out);
        }
        // scatter: one pool task per shard, anchors restricted to the
        // shard's owned vertices (on a view graph the partitioner is
        // still a valid disjoint+exhaustive split of the anchor domain,
        // which is all correctness requires). The persistent pool
        // replaces a per-query thread::scope: steady-state serving
        // spawns no threads.
        let traced = tracer.is_enabled();
        let dispatch_start = Instant::now();
        let slots: Vec<std::sync::Mutex<Option<PatternRows>>> =
            (0..n).map(|_| std::sync::Mutex::new(None)).collect();
        {
            let plan = &plan;
            let slots = &slots;
            shared.pool.run(n, &move |s| {
                let scatter_start = Instant::now();
                let anchor = |v: VertexId| partitioner.shard_of(v, target.vertex_type(v)) == s;
                let rows = plan.execute_anchored(target, &anchor);
                if traced {
                    tracer.record(
                        Stage::Scatter,
                        root_id,
                        scatter_start,
                        scatter_start.elapsed(),
                        snap.epoch,
                        format!("shard{s} rows={}", rows.1.len()),
                    );
                }
                *slots[s].lock().expect("scatter slot poisoned") = Some(rows);
            });
        }
        if traced {
            tracer.record(
                Stage::PoolDispatch,
                root_id,
                dispatch_start,
                dispatch_start.elapsed(),
                snap.epoch,
                format!("tasks={n}"),
            );
        }
        let per_shard: Vec<PatternRows> = slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .expect("scatter slot poisoned")
                    .expect("scatter task completed")
            })
            .collect();
        let gather_start = Instant::now();
        // gather: per-shard row sets are sorted and disjointly
        // anchored; a streaming k-way merge with on-the-fly dedup
        // reproduces the unsharded DISTINCT row set without
        // re-sorting the concatenation
        let mut columns = Vec::new();
        let mut iters: Vec<std::vec::IntoIter<Vec<VertexId>>> = Vec::with_capacity(n);
        let mut total = 0usize;
        for (cols, rows) in per_shard {
            columns = cols;
            total += rows.len();
            iters.push(rows.into_iter());
        }
        let mut heads: Vec<Option<Vec<VertexId>>> = iters.iter_mut().map(Iterator::next).collect();
        let mut merged: Vec<Vec<VertexId>> = Vec::with_capacity(total);
        loop {
            let mut best: Option<usize> = None;
            for (i, head) in heads.iter().enumerate() {
                if let Some(row) = head {
                    if best.is_none_or(|b| row < heads[b].as_ref().expect("best head present")) {
                        best = Some(i);
                    }
                }
            }
            let Some(i) = best else { break };
            let row =
                std::mem::replace(&mut heads[i], iters[i].next()).expect("best head was non-empty");
            if merged.last() != Some(&row) {
                merged.push(row);
            }
        }
        if traced {
            tracer.record(
                Stage::Gather,
                root_id,
                gather_start,
                gather_start.elapsed(),
                snap.epoch,
                format!("rows={}", merged.len()),
            );
        }
        pattern_done.set(Some(Instant::now()));
        Ok((columns, merged))
    });
    match result {
        Ok(table) => {
            let total = start.elapsed();
            if let (true, Some(t)) = (tracer.is_enabled(), pattern_done.get()) {
                tracer.record(
                    Stage::Relational,
                    root_id,
                    t,
                    t.elapsed(),
                    snap.epoch,
                    String::new(),
                );
            }
            shared.metrics.record_query(total);
            // workload sensing for the advisor: credit the serving
            // view, or log the normalized shape of a base-graph miss
            match planned.view_id {
                Some(vid) => {
                    let name = snap
                        .state
                        .catalog()
                        .get_by_id(vid)
                        .map(|v| v.def.id())
                        .unwrap_or_else(|| vid.to_string());
                    shared.metrics.record_view_benefit(vid, &name, total);
                }
                None => shared.metrics.record_miss_shape(&key, query, total),
            }
            drop(root);
            if timing {
                tracer.observe_query(
                    total,
                    snap.epoch,
                    &key,
                    &format!("plan={plan_time:?} total={total:?}"),
                );
            }
            Ok(table)
        }
        Err(e) => {
            shared.metrics.record_query_error();
            Err(KaskadeError::Execution(e))
        }
    }
}

/// The router worker: assembles write batches with the *same*
/// [`collect_batch`] the single engine's writer loop uses (so a delta
/// is accepted or rejected here iff the unsharded engine would make
/// the same call), then fans each batch out to the shard engines and
/// publishes the next global epoch once every shard has applied it.
/// After each publish the router evaluates the slot-compaction policy
/// on the global graph; when it fires, one remap fans out to every
/// shard (keeping shard-local ids equal to global ids) before the
/// compacted global epoch publishes — the same epoch fence as the
/// single engine, coordinated.
#[allow(clippy::too_many_arguments)]
fn router_loop(
    shared: Arc<ShardedShared>,
    rx: mpsc::Receiver<Msg>,
    max_batch: usize,
    mut compact_dead_ratio: f64,
    mut owners: Vec<u32>,
    mut edge_global: Vec<Vec<EdgeId>>,
    mut wal: Option<Wal>,
    mut extids: Arc<ExternalIdTable>,
) {
    let mut state = shared.cell.load().state.clone();
    // nothing has published yet, so the cell still holds the start
    // epoch — the same staleness floor `oldest_supported` was seeded
    // with
    let mut remaps = RemapHistory::starting_at(shared.cell.epoch());
    let mut open = true;
    while open {
        let batch = collect_batch(&rx, state.graph(), max_batch, &remaps, &extids);
        open = batch.open;
        if batch.rejected > 0 {
            shared.metrics.record_rejected(batch.rejected);
        }
        if batch.stale > 0 {
            shared.metrics.record_stale(batch.stale);
        }
        if batch.batched > 0 {
            let tracer = &shared.tracer;
            let mut batch_span = tracer.span(Stage::WriteBatch);
            if tracer.is_enabled() {
                batch_span.set_detail(format!("router batched={}", batch.batched));
                if let Some(oldest) = batch.oldest {
                    // the queue wait is over by the time the router
                    // sees the batch; record it retroactively
                    tracer.record(
                        Stage::QueueWait,
                        batch_span.id(),
                        oldest,
                        oldest.elapsed(),
                        shared.cell.epoch(),
                        "router".to_string(),
                    );
                }
            }
            let retractions = batch.delta.del_edges.len() + batch.delta.del_vertices.len();
            let apply_start = Instant::now();
            // owners of the vertices this batch inserts, assigned by
            // the partitioner at their predicted global ids — pushed
            // onto the table only if the batch lands
            let slots = state.graph().vertex_slots();
            let new_owners: Vec<u32> = batch
                .delta
                .vertices
                .iter()
                .enumerate()
                .map(|(i, nv)| {
                    shared
                        .partitioner
                        .shard_of(VertexId((slots + i) as u32), &nv.vtype)
                        as u32
                })
                .collect();
            // a failed fan-out (only possible mid-shutdown) must NOT
            // publish: a global epoch promises every shard applied it
            let apply_span = batch_span.child(Stage::Apply);
            let apply_id = apply_span.id();
            let advanced = advance(
                &shared,
                &state,
                &batch.delta,
                &owners,
                &new_owners,
                &mut edge_global,
                apply_id,
            );
            drop(apply_span);
            if let Some((next, shard_states, report)) = advanced {
                // group commit: one durable record for the merged
                // pre-split batch (shards never log), written strictly
                // before the global publish — same fail-stop contract
                // as the single engine's writer
                if let Some(w) = wal.as_mut() {
                    w.append_batch(shared.cell.epoch() + 1, &batch.delta)
                        .expect("WAL append failed; refusing to publish an unlogged batch");
                }
                for (i, nv) in batch.delta.vertices.iter().enumerate() {
                    if let Some(ext) = nv.ext {
                        Arc::make_mut(&mut extids)
                            .insert(ext, VertexId((slots + i) as u32))
                            .expect("resolution admitted a duplicate external id");
                    }
                }
                for &v in &batch.delta.del_vertices {
                    if extids.ext_of(v).is_some() {
                        Arc::make_mut(&mut extids).remove_slot(v);
                    }
                }
                state = next;
                owners.extend(new_owners);
                let epoch = shared.cell.epoch() + 1;
                {
                    let mut publish_span = batch_span.child(Stage::Publish);
                    publish_span.set_epoch(epoch);
                    shared.cell.publish(ShardedSnapshot {
                        epoch,
                        state: state.clone(),
                        shard_states,
                        extids: Arc::clone(&extids),
                    });
                }
                shared.cache.promote(epoch);
                for stat in &report.per_view {
                    let name = state
                        .catalog()
                        .get_by_id(stat.view)
                        .map(|v| v.def.id())
                        .unwrap_or_else(|| format!("view{}", stat.view.index()));
                    shared.metrics.record_per_view(&name, stat);
                    if tracer.is_enabled() {
                        tracer.record(
                            Stage::RefreshView,
                            apply_id,
                            apply_start,
                            stat.duration,
                            epoch,
                            format!("{name} level={}", stat.level),
                        );
                    }
                }
                let lag = batch.oldest.map(|t| t.elapsed()).unwrap_or_default();
                shared
                    .metrics
                    .record_refresh(batch.batched, apply_start.elapsed(), lag);
                if retractions > 0 {
                    shared.metrics.record_retractions(retractions);
                }
            }
        }
        if let Some(op) = &batch.ddl {
            let mut ddl_span = shared.tracer.span(Stage::Ddl);
            if let Some(w) = wal.as_mut() {
                w.append_ddl(shared.cell.epoch() + 1, op)
                    .expect("WAL append failed; refusing to publish an unlogged DDL");
            }
            // views are materialized over the GLOBAL graph at the
            // coordinator; shard engines hold empty catalogs, so there
            // is nothing to fan out — the DDL epoch republishes the
            // current shard states unchanged, and the coherence sums
            // (edges, owned vertices, statistics) are untouched
            state = state.apply_ddl(op);
            let epoch = shared.cell.epoch() + 1;
            let shard_states = shared.cell.load().shard_states.clone();
            shared.cell.publish(ShardedSnapshot {
                epoch,
                state: state.clone(),
                shard_states,
                extids: Arc::clone(&extids),
            });
            // the catalog changed: no cached plan may survive into the
            // new epoch (a plan naming a dropped ViewId, or planned
            // blind to a just-created view, would be wrong) — prune
            // without promoting, so the DDL epoch replans from scratch
            shared.cache.prune_below(epoch);
            let detail = match op {
                DdlOp::CreateView(def) => {
                    shared.metrics.record_view_created();
                    format!("create {}", def.id())
                }
                DdlOp::DropView(id) => {
                    shared.metrics.record_view_dropped();
                    format!("drop {id}")
                }
            };
            ddl_span.set_epoch(epoch);
            ddl_span.set_detail(detail);
        }
        if should_compact(state.graph(), compact_dead_ratio) {
            let mut compact_span = shared.tracer.span(Stage::Compact);
            let before = slot_capacity(state.graph());
            let (next, remap) = state.compact();
            let remap = Arc::new(remap);
            // every shard applies the identical vertex remap, so
            // shard-local ids stay equal to global ids and each shard
            // drops its ghost copies of the dead slots; the global
            // epoch publishes only after all shards confirmed
            let fanned_out = shared
                .shards
                .iter()
                .all(|shard| shard.submit_compact(Arc::clone(&remap)));
            if fanned_out {
                let shard_states: Vec<Arc<EpochSnapshot>> = shared
                    .shards
                    .iter()
                    .map(|shard| {
                        shard.flush();
                        shard.snapshot()
                    })
                    .collect();
                state = next;
                // the ownership table compacts through the same remap
                owners = owners
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| remap.vertex(VertexId(i as u32)).is_some())
                    .map(|(_, &o)| o)
                    .collect();
                // edge ids renumbered too: rebuild the shard-local →
                // global edge translation tables from the compacted
                // graph (every surviving edge is live, and each shard
                // compacted through the identical remap, so slot order
                // is preserved on both sides)
                for table in edge_global.iter_mut() {
                    table.clear();
                }
                let g = state.graph();
                for e in g.edges() {
                    edge_global[owners[g.edge_src(e).index()] as usize].push(e);
                }
                let epoch = shared.cell.epoch() + 1;
                // compaction is deterministic, so the log records only
                // a marker; replay re-runs `compact()` on the recovered
                // state and lands on the identical renumbering
                if let Some(w) = wal.as_mut() {
                    w.append_compact(epoch)
                        .expect("WAL append failed; refusing to publish an unlogged compaction");
                }
                Arc::make_mut(&mut extids).remap(&remap);
                shared.cell.publish(ShardedSnapshot {
                    epoch,
                    state: state.clone(),
                    shard_states,
                    extids: Arc::clone(&extids),
                });
                shared.cache.promote(epoch);
                let reclaimed = before - slot_capacity(state.graph());
                shared.metrics.record_compaction(reclaimed);
                compact_span.set_epoch(epoch);
                compact_span.set_detail(format!("reclaimed={reclaimed}"));
                remaps.record(epoch, remap);
                shared
                    .oldest_supported
                    .store(remaps.oldest_supported(), Ordering::Relaxed);
            } else {
                // a shard refused the remap (its writer is gone —
                // shutdown or a dead worker). Some shards may already
                // have compacted, so retrying with a remap computed
                // from the still-uncompacted router state would panic
                // their writers on a slot-count mismatch: stop
                // compacting for the rest of this engine's life. Batch
                // publishes already stop on their own (`advance`
                // returns `None` once any shard is unreachable).
                compact_dead_ratio = f64::INFINITY;
            }
        }
        if let Some(w) = wal.as_mut() {
            if w.should_checkpoint() {
                w.checkpoint(&state, shared.cell.epoch(), &extids)
                    .expect("WAL checkpoint failed");
            }
        }
        if batch.batched + batch.rejected > 0 {
            shared
                .queued
                .fetch_sub((batch.batched + batch.rejected) as u64, Ordering::Relaxed);
        }
        for ack in batch.acks {
            let _ = ack.send(shared.cell.epoch());
        }
    }
}

/// Applies one validated batch across the shards and derives the next
/// global state plus the per-shard snapshots it was built from:
/// sub-deltas fan out first, the coordinator stages the batch's
/// mutations (deaths, ghosts, new columns) into an editor while the
/// shard applies run, and the merged global CSR is then assembled
/// **from the shard CSRs** by parallel copy on the worker pool — the
/// coordinator never re-runs the full `apply_delta` adjacency build.
/// Views refresh with pool workers, statistics come from the per-shard
/// merge. Returns `None` — and the caller must not publish — if a
/// shard refused or missed its sub-delta (only possible mid-shutdown);
/// `edge_global` is only extended once every shard has confirmed, so a
/// bailed batch never pollutes the translation tables. The returned
/// [`RefreshReport`] carries the per-view timings the router feeds
/// into metrics and the flight recorder.
#[allow(clippy::type_complexity, clippy::too_many_arguments)]
fn advance(
    shared: &ShardedShared,
    state: &Snapshot,
    batch: &GraphDelta,
    owners: &[u32],
    new_owners: &[u32],
    edge_global: &mut [Vec<EdgeId>],
    apply_id: u64,
) -> Option<(Snapshot, Vec<Arc<EpochSnapshot>>, RefreshReport)> {
    let partitioner = &*shared.partitioner;
    let n = shared.shards.len();
    let g = state.graph();
    let slots = g.vertex_slots();
    debug_assert_eq!(owners.len(), slots, "ownership table tracks every slot");
    debug_assert_eq!(new_owners.len(), batch.vertices.len());
    // ownership comes from the router's tables, never from re-hashing
    // the id: compaction renumbers ids, and an edge must keep routing
    // to the shard that actually stores its source (the slot's owner
    // of record, assigned once at insert time). `new_owners` — the
    // entries the caller will append to the table when this batch
    // lands — is the single source of truth for the batch's own
    // inserts, so routing and the table cannot drift apart.
    let owner_existing = |v: VertexId| {
        if v.index() < slots {
            owners[v.index()] as usize
        } else {
            // a reference to a vertex this very batch inserts, by its
            // predicted global id
            new_owners[v.index() - slots] as usize
        }
    };
    let owner_new = |i: usize| new_owners[i] as usize;

    // 1. fan the batch out; shard workers start applying immediately
    for (s, sub) in batch
        .split(n, &owner_existing, &owner_new)
        .into_iter()
        .enumerate()
    {
        if sub.is_empty() {
            continue;
        }
        loop {
            match shared.shards[s].submit(sub.clone(), SubmitOpts::default()) {
                Ok(()) => break,
                // cannot happen in steady state (the router flushes
                // every batch, so a shard queue holds at most one
                // delta), but drain defensively rather than drop
                Err(SubmitError::Backpressure) => {
                    shared.shards[s].flush();
                }
                Err(_) => return None, // shutting down mid-flight
            }
        }
    }

    // 2. stage the batch's mutations while the shard applies run: the
    //    editor clones the global columns (property columns chunked
    //    across the pool) and `stage_delta` computes the exact deaths,
    //    ghosts, and appended columns `apply_delta` would — everything
    //    EXCEPT the adjacency build, which step 5 copies from the
    //    shard CSRs instead of recomputing
    let mut ed = g.edit_parallel(&*shared.pool);
    let staged = stage_delta(g, batch, &mut ed);

    // 3. barrier: the global epoch must not publish before every shard
    //    has applied the batch; capture each shard's snapshot once —
    //    the router is the sole submitter, so these are exactly the
    //    states the published epoch pairs with
    let shard_states: Vec<Arc<EpochSnapshot>> = shared
        .shards
        .iter()
        .map(|shard| {
            shard.flush();
            shard.snapshot()
        })
        .collect();
    let shard_graphs: Vec<Graph> = shard_states
        .iter()
        .map(|s| s.state.graph().clone())
        .collect();

    // 4. coherence guard: a shard that shut down mid-flight may have
    //    missed the batch, leaving its CSR one epoch behind. Merging
    //    from a stale CSR would corrupt the global graph, so verify
    //    every shard's slot counts line up with what this batch
    //    implies BEFORE the translation tables are extended — a bailed
    //    batch leaves `edge_global` untouched.
    let mut routed_new = vec![0usize; n];
    for e in &batch.edges {
        let owner = match e.src {
            VRef::Existing(v) => owner_existing(v),
            VRef::New(i) => owner_new(i),
            VRef::External(_) => unreachable!("external refs are resolved before split"),
        };
        routed_new[owner] += 1;
    }
    for (s, sg) in shard_graphs.iter().enumerate() {
        if sg.vertex_slots() != slots + batch.vertices.len()
            || sg.edge_slots() != edge_global[s].len() + routed_new[s]
        {
            return None;
        }
    }
    let edge_slots = g.edge_slots();
    for (k, e) in batch.edges.iter().enumerate() {
        let owner = match e.src {
            VRef::Existing(v) => owner_existing(v),
            VRef::New(i) => owner_new(i),
            VRef::External(_) => unreachable!("external refs are resolved before split"),
        };
        edge_global[owner].push(EdgeId((edge_slots + k) as u32));
    }

    // 5. merged publish: workers copy disjoint regions of the global
    //    CSR straight out of the shard CSRs (out-rows translated
    //    through `edge_global`, in-rows k-way merged back into global
    //    edge order) — byte-identical to the serial `apply_delta`
    //    result, at memcpy speed
    let mut all_owners = Vec::with_capacity(owners.len() + new_owners.len());
    all_owners.extend_from_slice(owners);
    all_owners.extend_from_slice(new_owners);
    let merge_start = Instant::now();
    let graph = ed.finish_merged(&shard_graphs, &all_owners, edge_global, &*shared.pool);
    if shared.tracer.is_enabled() {
        shared.tracer.record(
            Stage::MergePublish,
            apply_id,
            merge_start,
            merge_start.elapsed(),
            shared.cell.epoch(),
            format!(
                "shards={n} vertices={} edges={}",
                graph.vertex_count(),
                graph.edge_count()
            ),
        );
    }
    let applied = staged.into_applied(graph, g.clone());

    // 6. refresh views over the new global base through the refresh
    //    DAG: delta-driven per view, level-parallel across views on
    //    the persistent pool, connector frontiers recomputed one pool
    //    task per shard
    let part = |v: VertexId| partitioner.shard_of(v, applied.graph.vertex_type(v));
    let dag = RefreshDag::build(state.catalog());
    let (catalog, report) = dag.refresh(
        state.catalog(),
        &applied,
        &RefreshOptions {
            parallel: true,
            partition: Some(Partition {
                part_of: &part,
                parts: n,
            }),
            exec: Some(&*shared.pool),
        },
    );
    shared
        .metrics
        .record_view_refresh(report.refreshed as u64, report.rematerialized as u64);

    // 7. global statistics are the merge of the per-shard statistics
    let stats = GraphStats::merge(shard_states.iter().map(|s| s.state.stats()))
        .unwrap_or_else(|| GraphStats::compute(&applied.graph));

    let next = Snapshot::assemble(applied.graph, state.schema().clone(), stats, catalog);
    Some((next, shard_states, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaskade_core::{ConnectorDef, Kaskade, VRef, ViewDef};
    use kaskade_datasets::{generate_provenance, ProvenanceConfig};
    use kaskade_graph::{Graph, GraphBuilder, Schema, Value};
    use kaskade_query::{listings::LISTING_1, parse};

    fn instance(seed: u64) -> Kaskade {
        let g = generate_provenance(&ProvenanceConfig::tiny(seed).core_only());
        let mut k = Kaskade::new(g, Schema::provenance());
        k.materialize_view(ViewDef::Connector(ConnectorDef::k_hop("Job", "Job", 2)));
        k
    }

    /// A sharded engine that always scatters, so these tests exercise
    /// the fan-out read path even on tiny graphs.
    fn scatter_engine(k: &Kaskade, shards: usize) -> ShardedEngine {
        ShardedEngine::with_config(
            k.snapshot(),
            ShardedConfig {
                scatter_min_vertices: 0,
                ..ShardedConfig::hash(shards)
            },
        )
    }

    fn sorted_rows(t: &Table) -> Vec<String> {
        let mut rows: Vec<String> = t.rows.iter().map(|r| format!("{r:?}")).collect();
        rows.sort();
        rows
    }

    #[test]
    fn partitioners_cover_all_shards_disjointly() {
        for p in [
            &HashPartitioner::new(4) as &dyn Partitioner,
            &TypePartitioner::new(4),
        ] {
            assert_eq!(p.shard_count(), 4);
            for i in 0..100u32 {
                let s = p.shard_of(VertexId(i), if i % 2 == 0 { "Job" } else { "File" });
                assert!(s < 4);
                // deterministic
                assert_eq!(
                    s,
                    p.shard_of(VertexId(i), if i % 2 == 0 { "Job" } else { "File" })
                );
            }
        }
        // by-type puts every vertex of one type on one shard
        let tp = TypePartitioner::new(3);
        let jobs: Vec<usize> = (0..10).map(|i| tp.shard_of(VertexId(i), "Job")).collect();
        assert!(jobs.iter().all(|&s| s == jobs[0]));
    }

    #[test]
    fn sharded_results_match_unsharded_under_writes() {
        let k = instance(91);
        let query = parse(LISTING_1).unwrap();
        for shards in [1usize, 3] {
            let single = Engine::from_kaskade(&k);
            let sharded = scatter_engine(&k, shards);
            assert_eq!(sharded.shard_count(), shards);
            assert_eq!(
                sorted_rows(&sharded.execute(&query).unwrap()),
                sorted_rows(&single.execute(&query).unwrap()),
                "epoch 0, {shards} shards"
            );

            // stream identical deltas into both, compare after flush
            for step in 0..12u64 {
                let state = single.snapshot();
                let delta = crate::stream::churn_delta(&state.state, step).unwrap();
                single.submit(delta.clone(), SubmitOpts::default()).unwrap();
                sharded.submit(delta, SubmitOpts::default()).unwrap();
                single.flush();
                sharded.flush();
            }
            // scatter/gather reproduces the unsharded table exactly,
            // ordering included
            assert_eq!(
                single.execute(&query).unwrap(),
                sharded.execute(&query).unwrap(),
                "{shards} shards"
            );
            let snap = sharded.snapshot();
            assert!(snap.is_coherent());
            assert!(crate::drive::snapshot_is_consistent(&snap.state));
        }
    }

    #[test]
    fn global_epoch_publishes_only_complete_batches() {
        let engine = ShardedEngine::from_kaskade(&instance(92), 4);
        let mut reader = engine.reader();
        assert_eq!(reader.snapshot().epoch, 0);
        let mut d = GraphDelta::new();
        let j = d.add_vertex("Job", vec![("CPU".into(), Value::Int(1))]);
        let f = d.add_vertex("File", vec![]);
        d.add_edge(j, f, "WRITES_TO", vec![("ts".into(), Value::Int(1))]);
        engine.submit(d, SubmitOpts::default()).unwrap();
        let epoch = engine.flush();
        assert!(epoch >= 1);
        let snap = reader.snapshot();
        assert_eq!(snap.epoch, epoch);
        assert!(snap.is_coherent(), "all shard states from one publish");
        // the broadcast vertices exist on every shard, ghost except on
        // their owner
        let new_job = VertexId((snap.state.graph().vertex_slots() - 2) as u32);
        let owners: Vec<bool> = snap
            .shard_states
            .iter()
            .map(|s| !s.state.graph().is_vertex_ghost(new_job))
            .collect();
        assert_eq!(owners.iter().filter(|&&o| o).count(), 1);
    }

    #[test]
    fn retractions_flow_through_the_sharded_engine() {
        let mut b = GraphBuilder::new();
        let j0 = b.add_vertex("Job");
        let f0 = b.add_vertex("File");
        let j1 = b.add_vertex("Job");
        b.add_edge(j0, f0, "WRITES_TO");
        b.add_edge(f0, j1, "IS_READ_BY");
        let g = b.finish();
        let mut k = Kaskade::new(g, Schema::provenance());
        k.materialize_view(ViewDef::Connector(ConnectorDef::k_hop("Job", "Job", 2)));
        let engine = scatter_engine(&k, 2);
        let q = parse(
            "SELECT COUNT(*) FROM (MATCH (a:Job)-[:WRITES_TO]->(f:File) \
             (f:File)-[:IS_READ_BY]->(b:Job) RETURN a AS A, b AS B)",
        )
        .unwrap();
        assert_eq!(
            engine.execute(&q).unwrap().scalar().unwrap().as_int(),
            Some(1)
        );
        let mut d = GraphDelta::new();
        d.del_vertex(f0);
        engine.submit(d, SubmitOpts::default()).unwrap();
        engine.flush();
        assert_eq!(
            engine.execute(&q).unwrap().scalar().unwrap().as_int(),
            Some(0)
        );
        let snap = engine.snapshot();
        assert_eq!(snap.state.graph().edge_count(), 0);
        assert!(snap.is_coherent());
        // every shard cascaded its local incident edges
        let shard_edges: usize = snap
            .shard_states
            .iter()
            .map(|s| s.state.graph().edge_count())
            .sum();
        assert_eq!(shard_edges, 0);
        assert_eq!(engine.metrics().global.retractions_applied, 1);
    }

    #[test]
    fn invalid_deltas_rejected_by_router_not_shards() {
        let engine = ShardedEngine::from_kaskade(&instance(93), 3);
        // dangling base reference: dropped by the router at apply time
        let mut dangling = GraphDelta::new();
        let v = dangling.add_vertex("File", vec![]);
        dangling.add_edge(VRef::Existing(VertexId(99_999)), v, "WRITES_TO", vec![]);
        engine.submit(dangling, SubmitOpts::default()).unwrap();
        engine.flush();
        let m = engine.metrics();
        assert_eq!(m.global.deltas_rejected, 1);
        // no shard ever saw the bad delta
        assert!(m.per_shard.iter().all(|s| s.deltas_rejected == 0));
        assert_eq!(engine.queue_depth(), 0);
    }

    #[test]
    fn plan_cache_serves_repeated_sharded_queries() {
        let engine = scatter_engine(&instance(94), 2);
        let q = parse(LISTING_1).unwrap();
        for _ in 0..4 {
            engine.execute(&q).unwrap();
        }
        let m = engine.metrics().global;
        assert_eq!(m.queries, 4);
        assert_eq!(m.plan_cache_misses, 1);
        assert_eq!(m.plan_cache_hits, 3);
    }

    #[test]
    fn sharded_metrics_display_lists_shards() {
        let engine = ShardedEngine::from_kaskade(&instance(95), 2);
        let mut d = GraphDelta::new();
        d.add_vertex("Job", vec![]);
        engine.submit(d, SubmitOpts::default()).unwrap();
        engine.flush();
        let text = engine.metrics().to_string();
        assert!(text.contains("shard 0"), "{text}");
        assert!(text.contains("shard 1"), "{text}");
    }

    #[test]
    fn type_partitioned_engine_stays_equivalent() {
        let k = instance(96);
        let single = Engine::from_kaskade(&k);
        let sharded = ShardedEngine::with_config(
            k.snapshot(),
            ShardedConfig {
                partitioner: Arc::new(TypePartitioner::new(3)),
                max_batch: 8,
                queue_capacity: 64,
                scatter_min_vertices: 0,
                ..ShardedConfig::hash(3)
            },
        );
        let query = parse(LISTING_1).unwrap();
        for step in 0..8u64 {
            let state = single.snapshot();
            let delta = crate::stream::scripted_delta(&state.state, step).unwrap();
            single.submit(delta.clone(), SubmitOpts::default()).unwrap();
            sharded.submit(delta, SubmitOpts::default()).unwrap();
            single.flush();
            sharded.flush();
        }
        assert_eq!(
            single.execute(&query).unwrap(),
            sharded.execute(&query).unwrap()
        );
        assert!(sharded.snapshot().is_coherent());
    }

    #[test]
    fn coordinated_compaction_keeps_shards_aligned_and_coherent() {
        // a chain graph churned with delete-then-reinsert turnover:
        // the router must compact the global graph AND every shard
        // with one shared remap, keeping shard slots equal to global
        // slots and scatter/gather reads correct throughout
        let mut b = GraphBuilder::new();
        let vs: Vec<VertexId> = (0..24).map(|_| b.add_vertex("Job")).collect();
        for w in vs.windows(2) {
            b.add_edge(w[0], w[1], "SPAWNS");
        }
        let g = b.finish();
        let live = g.vertex_count() + g.edge_count();
        let engine = ShardedEngine::with_config(
            Snapshot::new(g, Schema::provenance()),
            ShardedConfig {
                scatter_min_vertices: 0,
                ..ShardedConfig::hash(3)
            },
        );
        let q =
            parse("SELECT COUNT(*) FROM (MATCH (a:Job)-[:SPAWNS]->(b:Job) RETURN a AS A, b AS B)")
                .unwrap();
        let expected = engine.execute(&q).unwrap();
        for round in 0..160u64 {
            let snap = engine.snapshot();
            let g = snap.state.graph();
            let e = g.edges().next().unwrap();
            let (s, d) = (g.edge_src(e), g.edge_dst(e));
            let mut delta = GraphDelta::new();
            delta.del_edge(VRef::Existing(s), VRef::Existing(d), "SPAWNS");
            delta.add_edge(
                VRef::Existing(s),
                VRef::Existing(d),
                "SPAWNS",
                vec![("ts".into(), Value::Int(round as i64))],
            );
            engine
                .submit(delta, SubmitOpts::based_on(snap.epoch))
                .unwrap();
            engine.flush();
        }
        let report = engine.metrics();
        assert!(report.global.compactions_run >= 1, "{report:?}");
        assert!(report.global.slots_reclaimed > 0);
        assert_eq!(report.global.deltas_rejected, 0, "{report:?}");
        // every shard compacted with the router (one compaction each)
        for (i, shard) in report.per_shard.iter().enumerate() {
            assert_eq!(
                shard.compactions_run, report.global.compactions_run,
                "shard {i} out of step: {report:?}"
            );
        }
        let snap = engine.snapshot();
        assert!(snap.is_coherent());
        let g = snap.state.graph();
        assert_eq!(g.vertex_count() + g.edge_count(), live);
        let capacity = g.vertex_slots() + g.edge_slots();
        assert!(capacity <= 2 * live, "capacity {capacity} vs live {live}");
        // shard slots stayed aligned with the global graph's
        for state in &snap.shard_states {
            assert_eq!(state.state.graph().vertex_slots(), g.vertex_slots());
        }
        // scatter/gather answers are unchanged by the renumbering
        assert_eq!(engine.execute(&q).unwrap(), expected);
        assert!(crate::drive::snapshot_is_consistent(&snap.state));
    }

    #[test]
    fn ddl_publishes_coherent_epochs_through_the_router() {
        use kaskade_core::ViewId;
        let k = instance(98); // one 2-hop Job→Job view at slot 0
        let engine = scatter_engine(&k, 3);
        let epoch0 = engine.epoch();
        let def = ViewDef::Connector(ConnectorDef::k_hop("Job", "Job", 4));
        assert!(engine.submit_ddl(DdlOp::CreateView(def.clone())));
        engine.flush();
        let snap = engine.snapshot();
        assert_eq!(snap.epoch, epoch0 + 1, "a DDL publishes its own epoch");
        assert!(snap.is_coherent(), "DDL reuses the current shard states");
        let created = snap.state.catalog().get(&def.id()).expect("view created");
        // materialized over the GLOBAL graph, not a shard fragment
        let mut scratch = Kaskade::new(snap.state.graph().clone(), Schema::provenance());
        scratch.materialize_view(def.clone());
        let scratch_view = scratch.snapshot().catalog().get(&def.id()).unwrap().clone();
        assert_eq!(created.graph.edge_count(), scratch_view.graph.edge_count());

        assert!(engine.submit_ddl(DdlOp::DropView(ViewId(0))));
        engine.flush();
        let snap = engine.snapshot();
        assert_eq!(snap.epoch, epoch0 + 2);
        assert!(snap.is_coherent());
        assert_eq!(
            snap.state.catalog().slot_count(),
            2,
            "slot stays tombstoned"
        );
        assert!(snap.state.catalog().get_by_id(ViewId(0)).is_none());
        let m = engine.metrics();
        assert_eq!(m.global.views_created, 1);
        assert_eq!(m.global.views_dropped, 1);

        // writes keep flowing and refresh the post-DDL catalog
        let mut d = GraphDelta::new();
        let j = d.add_vertex("Job", vec![]);
        let f = d.add_vertex("File", vec![]);
        d.add_edge(j, f, "WRITES_TO", vec![]);
        engine.submit(d, SubmitOpts::default()).unwrap();
        engine.flush();
        let snap = engine.snapshot();
        assert!(snap.is_coherent());
        assert!(crate::drive::snapshot_is_consistent(&snap.state));
    }

    #[test]
    fn shard_bootstrap_partitions_the_initial_graph() {
        let k = instance(97);
        let engine = ShardedEngine::from_kaskade(&k, 4);
        let snap = engine.snapshot();
        assert_eq!(snap.epoch, 0);
        assert!(snap.is_coherent());
        let global: &Graph = snap.state.graph();
        let shard_edges: usize = snap
            .shard_states
            .iter()
            .map(|s| s.state.graph().edge_count())
            .sum();
        assert_eq!(shard_edges, global.edge_count());
    }
}
