//! Epoch-published snapshots and the cell readers load them from.
//!
//! The writer publishes a fresh [`EpochSnapshot`] after each applied
//! write batch; readers observe state only through `Arc<EpochSnapshot>`
//! handles, so a reader's entire query — planning, view lookup,
//! execution — runs against one internally consistent state no matter
//! how many batches land meanwhile (snapshot isolation).
//!
//! The hot read path is lock-free in the steady state: a [`Reader`]
//! caches the `Arc` it last loaded and revalidates it with a single
//! atomic epoch load per query; it touches the [`SnapshotCell`]'s lock
//! only on the query *after* a publish, to swap in the new `Arc`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use kaskade_core::Snapshot;
use kaskade_graph::ExternalIdTable;

/// An immutable published state: the core read state (base graph, view
/// catalog, statistics) tagged with the epoch that produced it. Epoch 0
/// is the initial state; each applied write batch increments it.
#[derive(Debug)]
pub struct EpochSnapshot {
    /// Monotonic publish counter.
    pub epoch: u64,
    /// The read state of this epoch.
    pub state: Snapshot,
    /// The external-id bindings as of this epoch — the table `id(v) =
    /// <ext>` anchors resolve through. Shared, not copied: the writer
    /// clones the table only on epochs that changed it.
    pub extids: Arc<ExternalIdTable>,
}

/// The single-writer, many-reader publication point.
///
/// Readers call [`SnapshotCell::load`] (or go through a cached
/// [`Reader`]); the engine's writer worker is the only publisher
/// (`publish` is crate-private). The epoch counter is stored separately
/// from the slot so readers can detect staleness with one atomic load.
#[derive(Debug)]
pub struct SnapshotCell {
    epoch: AtomicU64,
    slot: RwLock<Arc<EpochSnapshot>>,
}

impl SnapshotCell {
    /// Publishes `state` as epoch 0 with no external-id bindings.
    pub fn new(state: Snapshot) -> Self {
        Self::with_epoch(state, 0, Arc::new(ExternalIdTable::new()))
    }

    /// Publishes `state` at an explicit starting epoch — how recovery
    /// resumes the epoch counter (and external-id table) from where the
    /// durable log left off.
    pub fn with_epoch(state: Snapshot, epoch: u64, extids: Arc<ExternalIdTable>) -> Self {
        SnapshotCell {
            epoch: AtomicU64::new(epoch),
            slot: RwLock::new(Arc::new(EpochSnapshot {
                epoch,
                state,
                extids,
            })),
        }
    }

    /// The epoch of the most recently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The current snapshot. Takes the slot lock briefly to clone the
    /// `Arc`; query execution then proceeds without any locking.
    pub fn load(&self) -> Arc<EpochSnapshot> {
        self.slot.read().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Atomically publishes `state` as the next epoch and returns it.
    /// The slot is swapped before the epoch counter is bumped, so a
    /// reader that observes the new epoch always loads the new slot.
    pub(crate) fn publish(&self, state: Snapshot, extids: Arc<ExternalIdTable>) -> u64 {
        let mut slot = self.slot.write().unwrap_or_else(|e| e.into_inner());
        let epoch = slot.epoch + 1;
        *slot = Arc::new(EpochSnapshot {
            epoch,
            state,
            extids,
        });
        self.epoch.store(epoch, Ordering::Release);
        epoch
    }
}

/// A per-thread read handle with a cached snapshot.
///
/// [`Reader::snapshot`] costs one atomic load while the cached epoch is
/// current — no lock, no `Arc` refcount traffic — and refreshes from
/// the cell only after a publish. Create one per reader thread with
/// `Engine::reader`.
#[derive(Debug, Clone)]
pub struct Reader {
    cell: Arc<SnapshotCell>,
    cached: Arc<EpochSnapshot>,
}

impl Reader {
    pub(crate) fn new(cell: Arc<SnapshotCell>) -> Self {
        let cached = cell.load();
        Reader { cell, cached }
    }

    /// The current snapshot (revalidated against the publish epoch).
    pub fn snapshot(&mut self) -> &Arc<EpochSnapshot> {
        if self.cell.epoch() != self.cached.epoch {
            self.cached = self.cell.load();
        }
        &self.cached
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaskade_graph::{GraphBuilder, Schema};

    fn empty_state() -> Snapshot {
        Snapshot::new(GraphBuilder::new().finish(), Schema::provenance())
    }

    #[test]
    fn publish_bumps_epoch_and_swaps_slot() {
        let cell = SnapshotCell::new(empty_state());
        assert_eq!(cell.epoch(), 0);
        assert_eq!(cell.load().epoch, 0);
        let e = cell.publish(empty_state(), Arc::new(ExternalIdTable::new()));
        assert_eq!(e, 1);
        assert_eq!(cell.epoch(), 1);
        assert_eq!(cell.load().epoch, 1);
    }

    #[test]
    fn poisoned_slot_lock_recovers() {
        // the slot holds a plain `Arc` swap — always valid — so a
        // panicked reader must not take the publication point down
        let cell = SnapshotCell::new(empty_state());
        let poisoner = std::thread::scope(|s| {
            s.spawn(|| {
                let _guard = cell.slot.write().unwrap();
                panic!("poison the snapshot slot");
            })
            .join()
        });
        assert!(poisoner.is_err(), "the poisoning thread panicked");
        assert_eq!(cell.load().epoch, 0);
        assert_eq!(
            cell.publish(empty_state(), Arc::new(ExternalIdTable::new())),
            1
        );
        assert_eq!(cell.load().epoch, 1);
    }

    #[test]
    fn reader_revalidates_on_publish_only() {
        let cell = Arc::new(SnapshotCell::new(empty_state()));
        let mut r = Reader::new(cell.clone());
        let first = Arc::clone(r.snapshot());
        // unchanged epoch: the very same Arc is reused
        assert!(Arc::ptr_eq(&first, r.snapshot()));
        cell.publish(empty_state(), Arc::new(ExternalIdTable::new()));
        let second = Arc::clone(r.snapshot());
        assert!(!Arc::ptr_eq(&first, &second));
        assert_eq!(second.epoch, 1);
    }
}
