//! Scripted, schema-respecting delta streams for driving the write
//! path.
//!
//! Serving experiments and the `kaskade serve` CLI need reproducible
//! write traffic against any dataset. Every pattern here derives its
//! deltas from the schema itself — edge rules pick valid types, so the
//! streams work on any dataset, heterogeneous or homogeneous, with no
//! per-dataset script. Four [`Workload`] shapes are available:
//!
//! - **Append** ([`scripted_delta`]): one new vertex plus one edge per
//!   step — the paper's insert-only growth regime.
//! - **Churn** ([`churn_delta`]): appends interleaved 1:1 with edge
//!   and cascading vertex retractions — roughly constant live size,
//!   unbounded id-slot turnover — exercising the provenance-counted
//!   deletion path and the engine's slot compaction end to end.
//! - **HotKey** ([`hot_key_delta`]): appends skewed onto one hot source
//!   vertex (~90% of steps), stressing a single neighborhood's
//!   incremental refresh.
//! - **Burst** ([`burst_delta`]): pipeline-shaped multi-edge chains in
//!   a single delta, the "many writes at once" regime.

use kaskade_core::{GraphDelta, Snapshot, VRef};
use kaskade_graph::Value;

/// SplitMix64: a tiny, well-distributed hash for deterministic choices.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The shape of a scripted delta stream; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Workload {
    /// Insert-only: one vertex + one edge per step.
    #[default]
    Append,
    /// Inserts interleaved with edge and vertex retractions.
    Churn,
    /// Inserts skewed onto one hot source vertex.
    HotKey,
    /// Pipeline-shaped multi-edge chains per delta.
    Burst,
}

impl Workload {
    /// Every workload, for iteration in experiments.
    pub const ALL: [Workload; 4] = [
        Workload::Append,
        Workload::Churn,
        Workload::HotKey,
        Workload::Burst,
    ];

    /// CLI name of the workload.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Append => "append",
            Workload::Churn => "churn",
            Workload::HotKey => "hotkey",
            Workload::Burst => "burst",
        }
    }

    /// Parses a CLI name (`append`, `churn`, `hotkey`, `burst`).
    pub fn parse(s: &str) -> Option<Workload> {
        Workload::ALL.into_iter().find(|w| w.name() == s)
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The scripted delta of `workload` for step `step` against `state`.
/// Returns `None` if the schema has no edge rules or the graph lacks
/// the vertices the pattern needs (possible only on degenerate/empty
/// graphs). Deterministic: the same `(state, workload, step)` yields
/// the same delta.
pub fn delta_for(workload: Workload, state: &Snapshot, step: u64) -> Option<GraphDelta> {
    match workload {
        Workload::Append => scripted_delta(state, step),
        Workload::Churn => churn_delta(state, step),
        Workload::HotKey => hot_key_delta(state, step),
        Workload::Burst => burst_delta(state, step),
    }
}

/// Sample of existing source vertices of `vtype` (first 1024 of the
/// type, so the scan stays O(1)-ish on huge graphs).
fn sources_of(state: &Snapshot, vtype: &str) -> Vec<kaskade_graph::VertexId> {
    state.graph().vertices_of_type(vtype).take(1024).collect()
}

/// The append-only scripted delta for step `step` against `state`: one
/// new vertex plus one edge reaching it from an existing vertex, chosen
/// per the schema's edge rules. Generated edges carry a `ts` property
/// of `step`, exercising the connector views' timestamp maintenance.
pub fn scripted_delta(state: &Snapshot, step: u64) -> Option<GraphDelta> {
    let rules = state.schema().edge_rules();
    if rules.is_empty() {
        return None;
    }
    let rule = &rules[(mix(step) % rules.len() as u64) as usize];
    let sources = sources_of(state, &rule.src);
    if sources.is_empty() {
        return None;
    }
    let src = sources[(mix(step ^ 0xD1F7) % sources.len() as u64) as usize];
    let mut delta = GraphDelta::new();
    let dst = delta.add_vertex(
        &rule.dst,
        vec![("ingest_step".into(), Value::Int(step as i64))],
    );
    delta.add_edge(
        VRef::Existing(src),
        dst,
        &rule.name,
        vec![("ts".into(), Value::Int(step as i64))],
    );
    Some(delta)
}

/// Churn: appends alternate with retractions — every other step
/// retracts an existing edge (by identity), every 4th a whole vertex,
/// incident edges and all — so past the warm-up floor the live size
/// stays roughly constant while id-slot **turnover** grows without
/// bound. That steady-state regime is exactly what the serving
/// runtime's slot compaction exists for: a long-lived churn engine
/// holds its memory at ~live size instead of accumulating a tombstone
/// per retired slot forever. Retractions are suppressed while the
/// graph is small so the stream never drains its own base.
pub fn churn_delta(state: &Snapshot, step: u64) -> Option<GraphDelta> {
    let g = state.graph();
    if step % 2 == 1 && g.edge_count() > 64 {
        let edges: Vec<_> = g.edges().take(1024).collect();
        let e = edges[(mix(step ^ 0xDE1E) % edges.len() as u64) as usize];
        let mut delta = GraphDelta::new();
        if step % 4 == 3 && g.vertex_count() > 64 {
            // vertex retraction: the edge's destination, cascading
            delta.del_vertex(g.edge_dst(e));
        } else {
            delta.del_edge(
                VRef::Existing(g.edge_src(e)),
                VRef::Existing(g.edge_dst(e)),
                g.edge_type(e),
            );
        }
        return Some(delta);
    }
    scripted_delta(state, step)
}

/// Skewed appends: ~90% of steps attach the new vertex to one **hot**
/// source (the first vertex of the chosen rule's source type), the rest
/// spread uniformly — a zipf-ish pattern that concentrates incremental
/// maintenance on one neighborhood.
pub fn hot_key_delta(state: &Snapshot, step: u64) -> Option<GraphDelta> {
    let rules = state.schema().edge_rules();
    if rules.is_empty() {
        return None;
    }
    // a fixed rule keeps the hot vertex hot across steps
    let rule = &rules[0];
    let sources = sources_of(state, &rule.src);
    if sources.is_empty() {
        return None;
    }
    let src = if mix(step ^ 0x407) % 10 < 9 {
        sources[0]
    } else {
        sources[(mix(step ^ 0xC01D) % sources.len() as u64) as usize]
    };
    let mut delta = GraphDelta::new();
    let dst = delta.add_vertex(
        &rule.dst,
        vec![("ingest_step".into(), Value::Int(step as i64))],
    );
    delta.add_edge(
        VRef::Existing(src),
        dst,
        &rule.name,
        vec![("ts".into(), Value::Int(step as i64))],
    );
    Some(delta)
}

/// Pipeline-shaped burst: one delta carrying a chain of up to four
/// schema-valid hops (`existing → new → new → …`), each edge continuing
/// from the previous hop's destination type. On a provenance schema
/// this produces job→file→job→… pipelines landing in one batch.
pub fn burst_delta(state: &Snapshot, step: u64) -> Option<GraphDelta> {
    let rules = state.schema().edge_rules();
    if rules.is_empty() {
        return None;
    }
    let first = &rules[(mix(step) % rules.len() as u64) as usize];
    let sources = sources_of(state, &first.src);
    if sources.is_empty() {
        return None;
    }
    let src = sources[(mix(step ^ 0xB0B) % sources.len() as u64) as usize];
    let mut delta = GraphDelta::new();
    let mut cur = VRef::Existing(src);
    let mut cur_type = first.src.clone();
    for hop in 0..4u64 {
        let continuing: Vec<_> = rules.iter().filter(|r| r.src == cur_type).collect();
        if continuing.is_empty() {
            break;
        }
        let rule = continuing[(mix(step ^ (hop << 8)) % continuing.len() as u64) as usize];
        let next = delta.add_vertex(
            &rule.dst,
            vec![("ingest_step".into(), Value::Int(step as i64))],
        );
        delta.add_edge(
            cur,
            next,
            &rule.name,
            vec![("ts".into(), Value::Int((step * 4 + hop) as i64))],
        );
        cur = next;
        cur_type = rule.dst.clone();
    }
    if delta.is_empty() {
        None
    } else {
        Some(delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaskade_datasets::{generate_provenance, ProvenanceConfig};
    use kaskade_graph::{GraphBuilder, Schema};

    fn prov_state(seed: u64) -> Snapshot {
        let g = generate_provenance(&ProvenanceConfig::tiny(seed).core_only());
        Snapshot::new(g, Schema::provenance())
    }

    #[test]
    fn deltas_respect_the_schema() {
        let state = prov_state(21);
        let mut state_now = state.clone();
        for step in 0..20 {
            let d = scripted_delta(&state_now, step).expect("prov schema has rules");
            assert_eq!(d.vertices.len(), 1);
            assert_eq!(d.edges.len(), 1);
            state_now = state_now.with_delta(&d);
        }
        assert_eq!(
            state_now.graph().vertex_count(),
            state.graph().vertex_count() + 20
        );
        // every appended edge was schema-valid: re-validating by
        // re-deriving the schema must stay within the declared rules
        let inferred = state_now.graph().infer_schema();
        for rule in inferred.edge_rules() {
            assert!(
                state.schema().allows_edge(&rule.src, &rule.name, &rule.dst),
                "scripted delta violated schema: {rule:?}"
            );
        }
    }

    #[test]
    fn deterministic_per_step() {
        let state = prov_state(22);
        for w in Workload::ALL {
            assert_eq!(delta_for(w, &state, 7), delta_for(w, &state, 7), "{w}");
            assert_ne!(delta_for(w, &state, 7), delta_for(w, &state, 8), "{w}");
        }
    }

    #[test]
    fn churn_interleaves_inserts_and_retractions() {
        let mut state = prov_state(23);
        let (mut inserts, mut edge_dels, mut vertex_dels) = (0u32, 0u32, 0u32);
        for step in 0..64 {
            let d = churn_delta(&state, step).expect("churn delta");
            if !d.edges.is_empty() {
                inserts += 1;
            }
            edge_dels += d.del_edges.len() as u32;
            vertex_dels += d.del_vertices.len() as u32;
            state = state.with_delta(&d);
        }
        assert!(inserts > 0, "churn still appends");
        assert!(edge_dels > 0, "churn retracts edges");
        assert!(vertex_dels > 0, "churn retracts vertices");
        // the graph survived the churn with both kinds of elements
        assert!(state.graph().vertex_count() > 0);
        assert!(state.graph().edge_count() > 0);
    }

    #[test]
    fn hot_key_is_skewed() {
        let state = prov_state(24);
        let mut hot_hits = 0u32;
        let rule = &state.schema().edge_rules()[0];
        let hot = state.graph().vertices_of_type(&rule.src).next().unwrap();
        for step in 0..100 {
            let d = hot_key_delta(&state, step).expect("hotkey delta");
            if d.edges[0].src == VRef::Existing(hot) {
                hot_hits += 1;
            }
        }
        assert!(
            hot_hits >= 70,
            "expected skew toward the hot key: {hot_hits}"
        );
        assert!(hot_hits < 100, "cold keys still occur: {hot_hits}");
    }

    #[test]
    fn burst_builds_schema_valid_chains() {
        let mut state = prov_state(25);
        for step in 0..12 {
            let d = burst_delta(&state, step).expect("burst delta");
            assert!(d.edges.len() >= 2, "bursts carry multiple edges");
            assert_eq!(d.edges.len(), d.vertices.len());
            state = state.with_delta(&d);
        }
        let inferred = state.graph().infer_schema();
        for rule in inferred.edge_rules() {
            assert!(
                state.schema().allows_edge(&rule.src, &rule.name, &rule.dst),
                "burst delta violated schema: {rule:?}"
            );
        }
    }

    #[test]
    fn workload_names_round_trip() {
        for w in Workload::ALL {
            assert_eq!(Workload::parse(w.name()), Some(w));
        }
        assert_eq!(Workload::parse("nope"), None);
        assert_eq!(Workload::default(), Workload::Append);
    }

    #[test]
    fn empty_graph_yields_none() {
        let state = Snapshot::new(GraphBuilder::new().finish(), Schema::provenance());
        for w in Workload::ALL {
            assert!(delta_for(w, &state, 0).is_none(), "{w}");
        }
        let no_rules = Snapshot::new(GraphBuilder::new().finish(), Schema::new());
        for w in Workload::ALL {
            assert!(delta_for(w, &no_rules, 0).is_none(), "{w}");
        }
    }
}
