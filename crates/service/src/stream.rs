//! Scripted, schema-respecting delta streams for driving the write
//! path.
//!
//! Serving experiments and the `kaskade serve` CLI need a reproducible
//! source of insert-only writes against any dataset. [`scripted_delta`]
//! derives one from the schema itself: step `s` picks an edge rule
//! (deterministically, by a hash of `s`), appends a fresh vertex of the
//! rule's range type, and connects it from an existing vertex of the
//! rule's domain type — so every generated delta is valid for every
//! dataset, heterogeneous or homogeneous, with no per-dataset script.

use kaskade_core::{GraphDelta, Snapshot, VRef};
use kaskade_graph::Value;

/// SplitMix64: a tiny, well-distributed hash for deterministic choices.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The scripted delta for step `step` against `state`: one new vertex
/// plus one edge reaching it from an existing vertex, chosen per the
/// schema's edge rules. Returns `None` if the schema has no edge rules
/// or the graph has no vertex of the chosen rule's source type yet
/// (possible only on degenerate/empty graphs).
///
/// Determinism: the same `(state schema, graph vertex set, step)` yields
/// the same delta, so runs are reproducible. Generated edges carry a
/// `ts` property of `step`, exercising the connector views' timestamp
/// maintenance.
pub fn scripted_delta(state: &Snapshot, step: u64) -> Option<GraphDelta> {
    let rules = state.schema().edge_rules();
    if rules.is_empty() {
        return None;
    }
    let rule = &rules[(mix(step) % rules.len() as u64) as usize];
    // pick an existing source vertex; sample among the first 1024 of
    // the type so the scan stays O(1)-ish on huge graphs
    let sources: Vec<_> = state
        .graph()
        .vertices_of_type(&rule.src)
        .take(1024)
        .collect();
    if sources.is_empty() {
        return None;
    }
    let src = sources[(mix(step ^ 0xD1F7) % sources.len() as u64) as usize];
    let mut delta = GraphDelta::new();
    let dst = delta.add_vertex(
        &rule.dst,
        vec![("ingest_step".into(), Value::Int(step as i64))],
    );
    delta.add_edge(
        VRef::Existing(src),
        dst,
        &rule.name,
        vec![("ts".into(), Value::Int(step as i64))],
    );
    Some(delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaskade_datasets::{generate_provenance, ProvenanceConfig};
    use kaskade_graph::{GraphBuilder, Schema};

    #[test]
    fn deltas_respect_the_schema() {
        let g = generate_provenance(&ProvenanceConfig::tiny(21).core_only());
        let state = Snapshot::new(g, Schema::provenance());
        let mut state_now = state.clone();
        for step in 0..20 {
            let d = scripted_delta(&state_now, step).expect("prov schema has rules");
            assert_eq!(d.vertices.len(), 1);
            assert_eq!(d.edges.len(), 1);
            state_now = state_now.with_delta(&d);
        }
        assert_eq!(
            state_now.graph().vertex_count(),
            state.graph().vertex_count() + 20
        );
        // every appended edge was schema-valid: re-validating by
        // re-deriving the schema must stay within the declared rules
        let inferred = state_now.graph().infer_schema();
        for rule in inferred.edge_rules() {
            assert!(
                state.schema().allows_edge(&rule.src, &rule.name, &rule.dst),
                "scripted delta violated schema: {rule:?}"
            );
        }
    }

    #[test]
    fn deterministic_per_step() {
        let g = generate_provenance(&ProvenanceConfig::tiny(22).core_only());
        let state = Snapshot::new(g, Schema::provenance());
        assert_eq!(scripted_delta(&state, 7), scripted_delta(&state, 7));
        assert_ne!(scripted_delta(&state, 7), scripted_delta(&state, 8));
    }

    #[test]
    fn empty_graph_yields_none() {
        let state = Snapshot::new(GraphBuilder::new().finish(), Schema::provenance());
        assert!(scripted_delta(&state, 0).is_none());
        let no_rules = Snapshot::new(GraphBuilder::new().finish(), Schema::new());
        assert!(scripted_delta(&no_rules, 0).is_none());
    }
}
