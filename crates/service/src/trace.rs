//! Structured tracing: spans, a flight recorder, and a slow-query log.
//!
//! Hand-rolled (the build is offline — no `tracing` crate): a
//! [`Tracer`] hands out RAII [`Span`] guards that time a named
//! [`Stage`] of the write or read path and, on drop, push a
//! [`TraceEvent`] into a fixed-size lock-free ring buffer — the
//! **flight recorder** — that `kaskade serve` dumps on demand or when
//! an anomaly (e.g. a slow query) is detected.
//!
//! Design constraints, in order:
//!
//! 1. **Disabled means free.** Every hot-path call sites one relaxed
//!    atomic load when tracing is off; a disabled [`Span`] carries
//!    `None` and its drop is a no-op. The CI overhead gate holds
//!    `--trace off` to within noise of the pre-tracing numbers.
//! 2. **Recording never blocks the writer.** Ring slots are claimed
//!    with a `fetch_add` cursor and written under a per-slot `try_lock`;
//!    a contended slot (a reader dumping mid-flight, or a wrapped
//!    writer) drops the event and bumps [`Tracer::dropped_events`]
//!    instead of waiting.
//! 3. **Explicit parenting.** Span ids come from a process-wide
//!    counter; children are created with [`Span::child`] rather than
//!    thread-local ambient context, so spans can hop threads (the
//!    engine's writer worker, scatter workers) without any TLS.
//!
//! The slow-query log rides on the same ring: when a query's total
//! latency crosses [`Tracer::slow_query_threshold`], the read path
//! records a [`Stage::SlowQuery`] event carrying the normalized query
//! AST, the epoch it ran against, and its stage timings — even when
//! span tracing is off (the threshold is its own opt-in).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Default flight-recorder capacity (events). Power of two so the ring
/// cursor wraps with a mask.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// The instrumented stages of the serving pipeline, in rough pipeline
/// order. `as_str` names are the span taxonomy used in dumps and docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Write path: time a delta spent queued before its batch started.
    QueueWait,
    /// Write path: one writer batch end to end (apply → publish).
    WriteBatch,
    /// Write path: applying the batched delta to the base graph.
    Apply,
    /// Write path (sharded): assembling the merged global graph from
    /// the shard CSRs on the worker pool (replaces the serial re-apply;
    /// child of `WriteBatch`).
    MergePublish,
    /// A batch of tasks dispatched to the persistent worker pool
    /// (detail = task count).
    PoolDispatch,
    /// Write path: one view's maintainer call (child of `WriteBatch`,
    /// one per catalog view, detail = view name, annotated with the
    /// DAG level).
    RefreshView,
    /// Write path: epoch-fenced slot compaction.
    Compact,
    /// Write path: one catalog mutation — create or drop of a
    /// materialized view — applied and published as its own epoch
    /// (detail = `create <view>` / `drop view#N`).
    Ddl,
    /// Control loop: one advisor tick — enumerate + select over live
    /// sensor data, diff against the catalog, issue DDL (detail =
    /// migrations issued).
    Advise,
    /// Write path: snapshot publish (the epoch bump).
    Publish,
    /// Read path: plan-cache probe (detail = hit/miss).
    PlanCacheLookup,
    /// Read path: planning a cache miss (enumeration + rewrite).
    Plan,
    /// Read path: one shard's scatter leg (detail = shard index).
    Scatter,
    /// Read path: gathering and deduplicating scatter results.
    Gather,
    /// Read path: one query end to end (the read-path root span).
    Query,
    /// Read path: the relational execution stage over the chosen plan
    /// (child of `Query`).
    Relational,
    /// A query that crossed the slow-query threshold (detail =
    /// normalized AST and stage timings).
    SlowQuery,
}

impl Stage {
    /// The stable dump/exposition name of the stage.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::QueueWait => "queue_wait",
            Stage::WriteBatch => "write_batch",
            Stage::Apply => "apply",
            Stage::MergePublish => "merge_publish",
            Stage::PoolDispatch => "pool_dispatch",
            Stage::RefreshView => "refresh_view",
            Stage::Compact => "compact",
            Stage::Ddl => "ddl",
            Stage::Advise => "advise",
            Stage::Publish => "publish",
            Stage::PlanCacheLookup => "plan_cache_lookup",
            Stage::Plan => "plan",
            Stage::Scatter => "scatter",
            Stage::Gather => "gather",
            Stage::Query => "query",
            Stage::Relational => "relational",
            Stage::SlowQuery => "slow_query",
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One completed span, as stored in the flight recorder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Unique span id (process-wide, monotonically increasing).
    pub id: u64,
    /// Parent span id, 0 for roots.
    pub parent: u64,
    /// Which pipeline stage this span timed.
    pub stage: Stage,
    /// Start offset since the tracer was created.
    pub start: Duration,
    /// Wall-clock duration of the span.
    pub duration: Duration,
    /// Epoch the work ran against (0 when not applicable).
    pub epoch: u64,
    /// Free-form detail: view name, shard index, normalized AST, …
    pub detail: String,
}

impl TraceEvent {
    /// One dump line: `[+offset_us] stage #id (parent #p) epoch=e dur=… detail`.
    pub fn render(&self) -> String {
        let mut line = format!(
            "[+{:>10.3}ms] {:<17} #{:<5}",
            self.start.as_secs_f64() * 1e3,
            self.stage.as_str(),
            self.id,
        );
        if self.parent != 0 {
            line.push_str(&format!(" parent=#{:<5}", self.parent));
        } else {
            line.push_str("              ");
        }
        line.push_str(&format!(
            " epoch={:<4} dur={:>9.3}ms",
            self.epoch,
            self.duration.as_secs_f64() * 1e3
        ));
        if !self.detail.is_empty() {
            line.push(' ');
            line.push_str(&self.detail);
        }
        line
    }
}

/// Fixed-size ring of recent [`TraceEvent`]s. Writers claim a slot with
/// a `fetch_add` on the cursor (lock-free, multi-producer) and store
/// the event under that slot's `try_lock`; dump takes each lock in turn
/// and snapshots whatever is present.
struct Ring {
    slots: Box<[Mutex<Option<TraceEvent>>]>,
    cursor: AtomicU64,
}

impl Ring {
    fn new(capacity: usize) -> Self {
        let capacity = capacity.next_power_of_two().max(2);
        Ring {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
        }
    }

    /// Lock-free slot claim; returns false when the slot was contended
    /// (event dropped).
    fn push(&self, ev: TraceEvent) -> bool {
        let at = self.cursor.fetch_add(1, Ordering::Relaxed) as usize;
        let slot = &self.slots[at & (self.slots.len() - 1)];
        match slot.try_lock() {
            Ok(mut s) => {
                *s = Some(ev);
                true
            }
            Err(_) => false,
        }
    }

    fn snapshot(&self) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        for slot in self.slots.iter() {
            if let Ok(s) = slot.lock() {
                if let Some(ev) = s.as_ref() {
                    out.push(ev.clone());
                }
            }
        }
        // ring order is not chronological once wrapped; sort by start
        // offset (ties: span id, which is allocation-ordered)
        out.sort_by_key(|e| (e.start, e.id));
        out
    }
}

/// The tracing subsystem: span factory, flight recorder, slow-query
/// threshold. One per serving engine (shards share the coordinator's).
pub struct Tracer {
    enabled: AtomicBool,
    origin: Instant,
    next_id: AtomicU64,
    ring: Ring,
    slow_query_nanos: AtomicU64,
    dropped: AtomicU64,
    slow_queries: AtomicU64,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .field("capacity", &self.ring.slots.len())
            .field("dropped", &self.dropped_events())
            .finish()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new(false)
    }
}

impl Tracer {
    /// A tracer with the default ring capacity.
    pub fn new(enabled: bool) -> Self {
        Tracer::with_capacity(enabled, DEFAULT_RING_CAPACITY)
    }

    /// A tracer with an explicit flight-recorder capacity (rounded up
    /// to a power of two).
    pub fn with_capacity(enabled: bool, capacity: usize) -> Self {
        Tracer {
            enabled: AtomicBool::new(enabled),
            origin: Instant::now(),
            next_id: AtomicU64::new(1),
            ring: Ring::new(capacity),
            slow_query_nanos: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            slow_queries: AtomicU64::new(0),
        }
    }

    /// Whether span tracing is on. One relaxed load — this is the whole
    /// cost of an instrumented site in a `--trace off` run.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Flips span tracing at runtime.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Sets the slow-query threshold; `None` disables the log. Operates
    /// independently of [`Tracer::is_enabled`].
    pub fn set_slow_query_threshold(&self, threshold: Option<Duration>) {
        let nanos = threshold.map_or(0, |d| d.as_nanos().min(u64::MAX as u128) as u64);
        self.slow_query_nanos.store(nanos, Ordering::Relaxed);
    }

    /// The active slow-query threshold, if any.
    pub fn slow_query_threshold(&self) -> Option<Duration> {
        match self.slow_query_nanos.load(Ordering::Relaxed) {
            0 => None,
            n => Some(Duration::from_nanos(n)),
        }
    }

    /// Events dropped on ring contention since creation.
    pub fn dropped_events(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Queries that crossed the slow-query threshold since creation.
    pub fn slow_queries(&self) -> u64 {
        self.slow_queries.load(Ordering::Relaxed)
    }

    /// Starts a root span. Returns a disabled (no-op) guard when
    /// tracing is off.
    #[inline]
    pub fn span(&self, stage: Stage) -> Span<'_> {
        if !self.is_enabled() {
            return Span::disabled();
        }
        self.span_always(stage, 0, String::new())
    }

    /// Starts an enabled span unconditionally (internal; callers have
    /// already checked `is_enabled` or want the span regardless).
    fn span_always(&self, stage: Stage, parent: u64, detail: String) -> Span<'_> {
        Span {
            tracer: Some(self),
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            parent,
            stage,
            started: Instant::now(),
            epoch: 0,
            detail,
        }
    }

    /// Records an already-measured interval as a completed span and
    /// returns its id (0 when tracing is off). Used where the timing
    /// already exists — e.g. per-view durations coming back in a
    /// `RefreshReport` — so the instrumented code does not need a live
    /// guard per view.
    pub fn record(
        &self,
        stage: Stage,
        parent: u64,
        start: Instant,
        duration: Duration,
        epoch: u64,
        detail: String,
    ) -> u64 {
        if !self.is_enabled() {
            return 0;
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.push(TraceEvent {
            id,
            parent,
            stage,
            start: start.saturating_duration_since(self.origin),
            duration,
            epoch,
            detail,
        });
        id
    }

    /// Feeds the slow-query log: when `total` crosses the threshold,
    /// records a [`Stage::SlowQuery`] event (normalized AST + stage
    /// timings in `detail`) regardless of [`Tracer::is_enabled`].
    /// Returns true when the query was logged.
    pub fn observe_query(
        &self,
        total: Duration,
        epoch: u64,
        normalized_ast: &str,
        stage_timings: &str,
    ) -> bool {
        let threshold = self.slow_query_nanos.load(Ordering::Relaxed);
        if threshold == 0 || (total.as_nanos() as u64) < threshold {
            return false;
        }
        self.slow_queries.fetch_add(1, Ordering::Relaxed);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.push(TraceEvent {
            id,
            parent: 0,
            stage: Stage::SlowQuery,
            start: self.origin.elapsed().saturating_sub(total),
            duration: total,
            epoch,
            detail: format!("{stage_timings} ast={normalized_ast}"),
        });
        true
    }

    /// Snapshots the flight recorder, oldest first.
    pub fn dump(&self) -> Vec<TraceEvent> {
        self.ring.snapshot()
    }

    /// Renders the flight recorder as dump lines, oldest first.
    pub fn render_dump(&self) -> String {
        let events = self.dump();
        let mut out = String::with_capacity(events.len() * 96);
        out.push_str(&format!(
            "# flight recorder: {} events (capacity {}, {} dropped, {} slow queries)\n",
            events.len(),
            self.ring.slots.len(),
            self.dropped_events(),
            self.slow_queries(),
        ));
        for ev in &events {
            out.push_str(&ev.render());
            out.push('\n');
        }
        out
    }

    fn push(&self, ev: TraceEvent) {
        if !self.ring.push(ev) {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// RAII span guard: times a [`Stage`] from creation to drop, then
/// pushes a [`TraceEvent`] into the tracer's flight recorder. A
/// disabled span (tracing off) is a couple of plain stores and a no-op
/// drop.
#[must_use = "a span measures until dropped; binding to _ drops it immediately"]
pub struct Span<'a> {
    tracer: Option<&'a Tracer>,
    id: u64,
    parent: u64,
    stage: Stage,
    started: Instant,
    epoch: u64,
    detail: String,
}

impl<'a> Span<'a> {
    /// The no-op span used when tracing is off.
    fn disabled() -> Span<'a> {
        Span {
            tracer: None,
            id: 0,
            parent: 0,
            stage: Stage::WriteBatch,
            // never read: drop is a no-op without a tracer
            started: Instant::now(),
            epoch: 0,
            detail: String::new(),
        }
    }

    /// This span's id (0 when disabled) — the `parent` for events
    /// recorded out-of-band via [`Tracer::record`].
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Starts a child span of the same tracer (explicit parenting — no
    /// thread-local context, so children can be created on any thread).
    #[inline]
    pub fn child(&self, stage: Stage) -> Span<'a> {
        match self.tracer {
            Some(t) => t.span_always(stage, self.id, String::new()),
            None => Span::disabled(),
        }
    }

    /// Tags the span with the epoch its work ran against.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Attaches free-form detail (view name, shard index, …). No-op
    /// when disabled, so callers may format lazily behind
    /// [`Tracer::is_enabled`].
    pub fn set_detail(&mut self, detail: impl Into<String>) {
        if self.tracer.is_some() {
            self.detail = detail.into();
        }
    }

    /// Elapsed time since the span started.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let Some(tracer) = self.tracer else { return };
        tracer.push(TraceEvent {
            id: self.id,
            parent: self.parent,
            stage: self.stage,
            start: self.started.saturating_duration_since(tracer.origin),
            duration: self.started.elapsed(),
            epoch: self.epoch,
            detail: std::mem::take(&mut self.detail),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new(false);
        {
            let s = t.span(Stage::WriteBatch);
            let _c = s.child(Stage::Apply);
        }
        t.record(
            Stage::RefreshView,
            0,
            Instant::now(),
            Duration::from_millis(1),
            3,
            "v".into(),
        );
        assert!(t.dump().is_empty());
        assert_eq!(t.dropped_events(), 0);
    }

    #[test]
    fn span_nesting_links_parent_ids() {
        let t = Tracer::new(true);
        let root_id;
        {
            let mut root = t.span(Stage::WriteBatch);
            root.set_epoch(7);
            root_id = root.id();
            let mut child = root.child(Stage::Apply);
            child.set_detail("batch of 3");
            drop(child);
            let vid = t.record(
                Stage::RefreshView,
                root_id,
                Instant::now(),
                Duration::from_micros(250),
                7,
                "connector:X".into(),
            );
            assert!(vid > root_id);
        }
        let events = t.dump();
        assert_eq!(events.len(), 3);
        let root = events.iter().find(|e| e.id == root_id).unwrap();
        assert_eq!(root.stage, Stage::WriteBatch);
        assert_eq!(root.epoch, 7);
        assert_eq!(root.parent, 0);
        for e in events.iter().filter(|e| e.id != root_id) {
            assert_eq!(e.parent, root_id, "{e:?}");
        }
        let apply = events.iter().find(|e| e.stage == Stage::Apply).unwrap();
        assert_eq!(apply.detail, "batch of 3");
        // children start no earlier than the root
        assert!(events.iter().all(|e| e.start >= root.start));
    }

    #[test]
    fn ring_wraps_and_keeps_most_recent() {
        let t = Tracer::with_capacity(true, 8);
        for i in 0..50u64 {
            let mut s = t.span(Stage::Query);
            s.set_epoch(i);
        }
        let events = t.dump();
        assert_eq!(events.len(), 8);
        // the survivors are the most recent 8, in order
        let epochs: Vec<u64> = events.iter().map(|e| e.epoch).collect();
        assert_eq!(epochs, (42..50).collect::<Vec<_>>());
        // dump output is renderable
        let dump = t.render_dump();
        assert!(dump.contains("flight recorder: 8 events"));
        assert!(dump.contains("query"));
    }

    #[test]
    fn concurrent_writers_preserve_ordering_and_nesting() {
        // many threads emit root+children concurrently; every surviving
        // child's parent must be a root from the same thread, and the
        // dump must come back sorted by start offset.
        let t = Arc::new(Tracer::with_capacity(true, 1024));
        let threads = 8;
        let spans_per_thread = 20;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let t = Arc::clone(&t);
                scope.spawn(move || {
                    for _ in 0..spans_per_thread {
                        let mut root = t.span(Stage::WriteBatch);
                        root.set_epoch(1);
                        let _child = root.child(Stage::Apply);
                    }
                });
            }
        });
        let events = t.dump();
        assert_eq!(
            events.len() as u64 + t.dropped_events(),
            (threads * spans_per_thread * 2) as u64
        );
        // sorted by start offset
        assert!(events.windows(2).all(|w| w[0].start <= w[1].start));
        // nesting: every child links a WriteBatch root with a smaller id
        let mut roots = std::collections::HashMap::new();
        for e in &events {
            if e.stage == Stage::WriteBatch {
                roots.insert(e.id, e);
            }
        }
        for e in events.iter().filter(|e| e.stage == Stage::Apply) {
            assert!(e.parent != 0 && e.parent < e.id);
            if let Some(root) = roots.get(&e.parent) {
                assert_eq!(root.stage, Stage::WriteBatch);
            }
        }
    }

    #[test]
    fn slow_query_log_is_independent_of_enabled() {
        let t = Tracer::new(false);
        t.set_slow_query_threshold(Some(Duration::from_millis(5)));
        assert!(!t.observe_query(Duration::from_millis(1), 2, "q", "plan=1ms"));
        assert!(t.observe_query(Duration::from_millis(9), 2, "match (a:Job)", "plan=8ms"));
        assert_eq!(t.slow_queries(), 1);
        let events = t.dump();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].stage, Stage::SlowQuery);
        assert_eq!(events[0].epoch, 2);
        assert!(events[0].detail.contains("match (a:Job)"));
        assert!(events[0].detail.contains("plan=8ms"));
    }

    #[test]
    fn threshold_none_disables_slow_query_log() {
        let t = Tracer::new(true);
        assert_eq!(t.slow_query_threshold(), None);
        assert!(!t.observe_query(Duration::from_secs(10), 1, "q", ""));
        t.set_slow_query_threshold(Some(Duration::from_nanos(1)));
        assert_eq!(t.slow_query_threshold(), Some(Duration::from_nanos(1)));
        t.set_slow_query_threshold(None);
        assert!(!t.observe_query(Duration::from_secs(10), 1, "q", ""));
        assert!(t.dump().is_empty());
    }
}
