//! Durability: an epoch-tagged delta write-ahead log plus snapshot
//! checkpoints, so a serving engine survives a crash without losing
//! acknowledged batches.
//!
//! The design follows the classic group-commit WAL shape, specialized
//! to Kaskade's single-writer publish loop:
//!
//! - **One record per merged batch.** The engine writer (and the
//!   sharded coordinator) already merge queued deltas into one
//!   [`GraphDelta`] per publish; the WAL logs that merged delta once,
//!   tagged with the epoch it will publish as. Group commit therefore
//!   costs one `write` + optional `fsync` per *epoch*, not per
//!   submitted delta.
//! - **CRC-framed records.** Each record is `[len u32][crc32 u32]
//!   [payload]` (little-endian) where the payload is `kind u8 ·
//!   epoch u64 · body`. A torn tail — a partial frame from a crash
//!   mid-write — fails the length or CRC check and cleanly ends
//!   replay; everything before it is intact.
//! - **Checkpoints bound replay.** Every
//!   [`WalConfig::checkpoint_every`] batches the writer serializes the
//!   full compacted state (dense graph, schema, stats, view catalog,
//!   external-id table) to `checkpoint-<epoch>.ckpt` via temp-file +
//!   rename — with the WAL **directory** fsynced after the rename, so
//!   the new checkpoint's dirent is on disk — and only then truncates
//!   the log and removes older checkpoints. Recovery is *latest valid
//!   checkpoint + replay of newer records*; records at or below the
//!   checkpoint epoch are skipped, so a crash between the rename and
//!   the truncation is harmless. Publish epochs are consecutive, and
//!   replay enforces it: a record whose epoch does not directly follow
//!   the previous durable epoch means the directory lost a checkpoint
//!   or log segment, and recovery fails loudly instead of serving a
//!   state with silent holes.
//!
//! Replay is deterministic because the logged delta is the
//! post-resolution merged batch: external-id references are already
//! resolved to slots, and compactions are logged as bare
//! `KIND_COMPACT` markers replayed by re-running the (deterministic)
//! slot compaction. The differential proptests in
//! `tests/durability.rs` hold a recovered engine byte-identical to one
//! that never restarted.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use kaskade_core::persist::{decode_view_def, encode_view_def};
use kaskade_core::{DdlOp, GraphDelta, Snapshot, ViewId};
use kaskade_graph::{crc32, Dec, Enc, ExternalIdTable, VertexId};

/// Magic header of the delta log file (`wal.log`).
const WAL_MAGIC: &[u8; 8] = b"KSKWAL01";
/// Magic header of checkpoint files (`checkpoint-<epoch>.ckpt`).
const CKPT_MAGIC: &[u8; 8] = b"KSKCKP01";
/// Record kind: one merged write batch (body = encoded [`GraphDelta`]).
const KIND_BATCH: u8 = 1;
/// Record kind: an epoch-fenced slot compaction (no body — replay
/// re-runs the deterministic compaction).
const KIND_COMPACT: u8 = 2;
/// Record kind: one catalog-mutation (DDL) publish. Body = `tag u8`
/// (0 = create, followed by the encoded [`kaskade_core::ViewDef`];
/// 1 = drop, followed by the `u32` [`kaskade_core::ViewId`]). Replay
/// re-runs [`Snapshot::apply_ddl`], so recovered catalogs keep the
/// exact slot layout (ids and tombstones) of the live engine.
const KIND_DDL: u8 = 3;

/// Where and how durably to log. Attach to an
/// [`EngineConfig`](crate::EngineConfig) or
/// [`ShardedConfig`](crate::ShardedConfig) to turn on the WAL.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Directory holding `wal.log` and `checkpoint-*.ckpt` (created if
    /// missing).
    pub dir: PathBuf,
    /// `fsync` the log after every appended record (and checkpoints
    /// always). Turning this off trades crash durability of the last
    /// few batches for append latency.
    pub fsync: bool,
    /// Write a checkpoint after this many logged batches, bounding
    /// both log growth and recovery replay time.
    pub checkpoint_every: u64,
    /// Allow a **fresh** (non-recovery) start to discard durable state
    /// already present in [`WalConfig::dir`]. Off by default: opening
    /// the WAL fresh writes a new checkpoint and truncates the log, so
    /// pointing a fresh engine at a directory holding a previous run's
    /// state would silently destroy it — without this flag such an
    /// open fails with `AlreadyExists` instead, and the caller either
    /// recovers ([`crate::Engine::recover`]) or picks a clean
    /// directory. Recovery itself never needs the flag.
    pub overwrite: bool,
}

impl WalConfig {
    /// Durable defaults: fsync on, checkpoint every 64 batches, refuse
    /// to overwrite existing durable state.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        WalConfig {
            dir: dir.into(),
            fsync: true,
            checkpoint_every: 64,
            overwrite: false,
        }
    }
}

/// The open write-ahead log owned by an engine's writer thread.
///
/// All appends happen-before the corresponding snapshot publish; an
/// I/O error is fail-stop (the writer panics, submissions then return
/// `Closed`) rather than risking an acknowledged-but-unlogged batch.
#[derive(Debug)]
pub struct Wal {
    config: WalConfig,
    log: File,
    since_checkpoint: u64,
}

/// State reconstructed by [`recover`]: the replayed snapshot plus the
/// bookkeeping an engine needs to resume exactly where the log ends.
#[derive(Debug)]
pub struct Recovered {
    /// The recovered read state (graph, schema, stats, views).
    pub state: Snapshot,
    /// Epoch of the last durable record (checkpoint or replayed
    /// batch); the engine resumes publishing at `epoch + 1`.
    pub epoch: u64,
    /// The external-id table as of `epoch`.
    pub extids: ExternalIdTable,
    /// How many log records were replayed on top of the checkpoint.
    pub records_replayed: usize,
}

/// Makes directory-entry changes (a rename or file creation in `dir`)
/// durable: `fsync` on the directory itself. A rename is only
/// crash-durable once its containing directory has been synced.
fn fsync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

/// Whether `dir` already holds durable WAL state a fresh open would
/// destroy: any checkpoint file, or a log with records past the magic
/// header. A missing directory (or a bare/empty log) is clean.
fn dir_has_durable_state(dir: &Path) -> io::Result<bool> {
    match list_checkpoints(dir) {
        Ok(ckpts) if !ckpts.is_empty() => return Ok(true),
        Ok(_) => {}
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(false),
        Err(e) => return Err(e),
    }
    match fs::metadata(dir.join("wal.log")) {
        Ok(m) => Ok(m.len() > WAL_MAGIC.len() as u64),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
        Err(e) => Err(e),
    }
}

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Reads one `[len][crc][payload]` frame from `buf`, returning the
/// payload and the bytes consumed. `None` means the tail is torn or
/// corrupt (short header, short payload, or CRC mismatch) — the
/// caller stops replay there.
fn read_frame(buf: &[u8]) -> Option<(&[u8], usize)> {
    if buf.len() < 8 {
        return None;
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    let rest = &buf[8..];
    if rest.len() < len {
        return None;
    }
    let payload = &rest[..len];
    if crc32(payload) != crc {
        return None;
    }
    Some((payload, 8 + len))
}

impl Wal {
    /// Opens the log at `config.dir` for a **fresh** start, seeding it
    /// with a checkpoint of `state` at `epoch` and an empty log.
    /// Because that seeding discards whatever the directory held, this
    /// refuses (`AlreadyExists`) a directory that already contains
    /// durable state — a checkpoint or logged records — unless
    /// [`WalConfig::overwrite`] is set: a forgotten recovery flag must
    /// not wipe a previous run's data. Post-recovery reopens go
    /// through `Wal::open_after_recovery`, which skips the guard
    /// (the recovered state *is* the directory's state).
    pub fn open(
        config: WalConfig,
        state: &Snapshot,
        epoch: u64,
        extids: &ExternalIdTable,
    ) -> io::Result<Wal> {
        if !config.overwrite && dir_has_durable_state(&config.dir)? {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!(
                    "WAL directory {} already holds durable state (a checkpoint or logged \
                     records); recover from it instead of starting fresh, set \
                     WalConfig.overwrite to discard it, or use an empty directory",
                    config.dir.display()
                ),
            ));
        }
        Self::open_unchecked(config, state, epoch, extids)
    }

    /// [`Wal::open`] for the reopen immediately after a successful
    /// [`recover`]: the checkpoint written here *is* the recovered
    /// durable frontier, so collapsing the directory to "checkpoint
    /// now, nothing to replay" loses nothing.
    pub(crate) fn open_after_recovery(
        config: WalConfig,
        state: &Snapshot,
        epoch: u64,
        extids: &ExternalIdTable,
    ) -> io::Result<Wal> {
        Self::open_unchecked(config, state, epoch, extids)
    }

    fn open_unchecked(
        config: WalConfig,
        state: &Snapshot,
        epoch: u64,
        extids: &ExternalIdTable,
    ) -> io::Result<Wal> {
        fs::create_dir_all(&config.dir)?;
        // make the directory itself durable: if its dirent is lost on
        // power failure, every fsynced record inside it is unreachable
        if let Some(parent) = config.dir.parent().filter(|p| !p.as_os_str().is_empty()) {
            fsync_dir(parent)?;
        }
        let log = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(config.dir.join("wal.log"))?;
        let mut wal = Wal {
            config,
            log,
            since_checkpoint: 0,
        };
        wal.checkpoint(state, epoch, extids)?;
        Ok(wal)
    }

    /// Appends one merged-batch record for the batch about to publish
    /// as `epoch`. Durable (per [`WalConfig::fsync`]) before return.
    pub fn append_batch(&mut self, epoch: u64, delta: &GraphDelta) -> io::Result<()> {
        let mut payload = Enc::new();
        payload.u8(KIND_BATCH);
        payload.u64(epoch);
        delta.encode(&mut payload);
        self.append(&payload.into_bytes())?;
        self.since_checkpoint += 1;
        Ok(())
    }

    /// Appends a compaction marker for the compacted state about to
    /// publish as `epoch`.
    pub fn append_compact(&mut self, epoch: u64) -> io::Result<()> {
        let mut payload = Enc::new();
        payload.u8(KIND_COMPACT);
        payload.u64(epoch);
        self.append(&payload.into_bytes())
    }

    /// Appends one catalog-mutation record for the DDL about to publish
    /// as `epoch`. Counted toward the checkpoint cadence like a batch:
    /// replaying a `CreateView` re-materializes the view, so DDL-heavy
    /// logs should checkpoint just as eagerly.
    pub fn append_ddl(&mut self, epoch: u64, op: &DdlOp) -> io::Result<()> {
        let mut payload = Enc::new();
        payload.u8(KIND_DDL);
        payload.u64(epoch);
        match op {
            DdlOp::CreateView(def) => {
                payload.u8(0);
                encode_view_def(def, &mut payload);
            }
            DdlOp::DropView(id) => {
                payload.u8(1);
                payload.u32(id.0);
            }
        }
        self.append(&payload.into_bytes())?;
        self.since_checkpoint += 1;
        Ok(())
    }

    fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        self.log.write_all(&frame(payload))?;
        if self.config.fsync {
            self.log.sync_data()?;
        }
        Ok(())
    }

    /// Whether enough batches have been logged to warrant a
    /// checkpoint.
    pub fn should_checkpoint(&self) -> bool {
        self.since_checkpoint >= self.config.checkpoint_every
    }

    /// Serializes the full state to `checkpoint-<epoch>.ckpt`
    /// (temp-file + rename, file **and directory** fsynced), truncates
    /// the log, and removes older checkpoints. Crash-ordering: the
    /// rename plus directory sync makes the new checkpoint durable
    /// *before* the log truncates — without the directory sync a power
    /// loss could keep the truncation but drop the rename, leaving an
    /// older checkpoint next to a log missing the epochs in between —
    /// and replay skips records at or below the checkpoint epoch, so
    /// no interleaving of crash points loses or double-applies a
    /// batch.
    pub fn checkpoint(
        &mut self,
        state: &Snapshot,
        epoch: u64,
        extids: &ExternalIdTable,
    ) -> io::Result<()> {
        let mut payload = Enc::new();
        payload.u64(epoch);
        extids.encode(&mut payload);
        state.encode(&mut payload);
        let tmp = self.config.dir.join("checkpoint.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(CKPT_MAGIC)?;
            f.write_all(&frame(&payload.into_bytes()))?;
            f.sync_all()?;
        }
        let final_path = self.config.dir.join(format!("checkpoint-{epoch}.ckpt"));
        fs::rename(&tmp, &final_path)?;
        // the rename is only durable once the directory is synced; the
        // log must not truncate before that point (checkpoints always
        // sync, whatever `config.fsync` says — same as the file above)
        fsync_dir(&self.config.dir)?;
        // reset the log to just its magic header
        self.log.set_len(0)?;
        self.log.seek(SeekFrom::Start(0))?;
        self.log.write_all(WAL_MAGIC)?;
        if self.config.fsync {
            self.log.sync_data()?;
        }
        self.since_checkpoint = 0;
        // older checkpoints are now dead weight
        for (path, ckpt_epoch) in list_checkpoints(&self.config.dir)? {
            if ckpt_epoch != epoch && path != final_path {
                let _ = fs::remove_file(path);
            }
        }
        Ok(())
    }
}

fn list_checkpoints(dir: &Path) -> io::Result<Vec<(PathBuf, u64)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = match path.file_name().and_then(|n| n.to_str()) {
            Some(n) => n,
            None => continue,
        };
        if let Some(epoch) = name
            .strip_prefix("checkpoint-")
            .and_then(|rest| rest.strip_suffix(".ckpt"))
            .and_then(|e| e.parse::<u64>().ok())
        {
            out.push((path, epoch));
        }
    }
    out.sort_by_key(|&(_, e)| e);
    Ok(out)
}

/// Parses one checkpoint file; `None` if it is torn or corrupt.
fn load_checkpoint(path: &Path) -> Option<(Snapshot, u64, ExternalIdTable)> {
    let bytes = fs::read(path).ok()?;
    let rest = bytes.strip_prefix(CKPT_MAGIC.as_slice())?;
    let (payload, _) = read_frame(rest)?;
    let mut d = Dec::new(payload);
    let epoch = d.u64().ok()?;
    let extids = ExternalIdTable::decode(&mut d).ok()?;
    let state = Snapshot::decode(&mut d).ok()?;
    Some((state, epoch, extids))
}

/// Replays one batch record onto `state`, maintaining the external-id
/// table exactly as the live writer did: new vertices bind their
/// declared external ids to the appended slots, retracted slots drop
/// their bindings.
fn replay_batch(
    state: Snapshot,
    extids: &mut ExternalIdTable,
    delta: &GraphDelta,
) -> io::Result<Snapshot> {
    let base_slots = state.graph().vertex_slots();
    let next = state.with_delta(delta);
    for (i, nv) in delta.vertices.iter().enumerate() {
        if let Some(ext) = nv.ext {
            extids
                .insert(ext, VertexId((base_slots + i) as u32))
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))?;
        }
    }
    for &v in &delta.del_vertices {
        extids.remove_slot(v);
    }
    Ok(next)
}

/// Recovers the latest durable state from `dir`: loads the
/// highest-epoch valid checkpoint, then replays every intact log
/// record with a higher epoch. Returns `Ok(None)` when the directory
/// holds no usable checkpoint (nothing was ever logged, or everything
/// is corrupt — the caller starts fresh). A torn or corrupt record
/// ends replay at the last intact prefix; that is the crash-consistent
/// durable frontier, not an error. A record whose epoch does **not**
/// directly follow the previous durable epoch is different: publishes
/// are consecutive, so a gap means acknowledged epochs are missing
/// (a lost checkpoint rename next to a persisted log truncation, a
/// deleted file) and recovery fails with `InvalidData` rather than
/// silently serving a state with holes.
pub fn recover(dir: &Path) -> io::Result<Option<Recovered>> {
    let checkpoints = match list_checkpoints(dir) {
        Ok(c) => c,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    // newest first; fall back to an older checkpoint if the newest is
    // torn (crash during the checkpoint write itself)
    let mut loaded = None;
    for (path, _) in checkpoints.iter().rev() {
        if let Some(found) = load_checkpoint(path) {
            loaded = Some(found);
            break;
        }
    }
    let (mut state, ckpt_epoch, mut extids) = match loaded {
        Some(l) => l,
        None => return Ok(None),
    };

    let mut epoch = ckpt_epoch;
    let mut records_replayed = 0usize;
    let log_path = dir.join("wal.log");
    if let Ok(mut f) = File::open(&log_path) {
        let mut bytes = Vec::new();
        f.read_to_end(&mut bytes)?;
        let mut rest: &[u8] = match bytes.strip_prefix(WAL_MAGIC.as_slice()) {
            Some(r) => r,
            None => &[], // missing/foreign header: nothing replayable
        };
        while let Some((payload, consumed)) = read_frame(rest) {
            rest = &rest[consumed..];
            let mut d = Dec::new(payload);
            let (kind, rec_epoch) = match (d.u8(), d.u64()) {
                (Ok(k), Ok(e)) => (k, e),
                _ => break,
            };
            if rec_epoch <= ckpt_epoch {
                // logged before the checkpoint truncation landed —
                // already folded into the checkpoint state
                continue;
            }
            if rec_epoch != epoch + 1 {
                // publishes are consecutive: a gap means durable
                // epochs vanished between the checkpoint and this
                // record — refuse to recover a state with holes
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "WAL record epoch {rec_epoch} does not follow durable epoch {epoch} \
                         in {}: intermediate epochs are missing (lost checkpoint or log \
                         segment); refusing to recover an inconsistent state",
                        dir.display()
                    ),
                ));
            }
            match kind {
                KIND_BATCH => {
                    let delta = match GraphDelta::decode(&mut d) {
                        Ok(delta) => delta,
                        Err(_) => break,
                    };
                    state = replay_batch(state, &mut extids, &delta)?;
                }
                KIND_COMPACT => {
                    let (next, remap) = state.compact();
                    extids.remap(&remap);
                    state = next;
                }
                KIND_DDL => {
                    let op = match d.u8() {
                        Ok(0) => match decode_view_def(&mut d) {
                            Ok(def) => DdlOp::CreateView(def),
                            Err(_) => break,
                        },
                        Ok(1) => match d.u32() {
                            Ok(id) => DdlOp::DropView(ViewId(id)),
                            Err(_) => break,
                        },
                        _ => break,
                    };
                    state = state.apply_ddl(&op);
                }
                _ => break,
            }
            epoch = rec_epoch;
            records_replayed += 1;
        }
    }
    Ok(Some(Recovered {
        state,
        epoch,
        extids,
        records_replayed,
    }))
}

/// Convenience wrapper over [`recover`] that surfaces decode problems
/// in the checkpoint itself as hard errors instead of `None`. Used by
/// tests; the engine goes through [`recover`].
pub fn recover_or_fail(dir: &Path) -> io::Result<Recovered> {
    recover(dir)?.ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::NotFound,
            format!("no recoverable state in {}", dir.display()),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaskade_core::Snapshot;
    use kaskade_graph::{same_dense_graph, GraphBuilder, Schema};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "kaskade-wal-{tag}-{}-{:p}",
            std::process::id(),
            &tag
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn empty_state() -> Snapshot {
        Snapshot::new(GraphBuilder::new().finish(), Schema::provenance())
    }

    fn job_delta(ext: Option<u64>) -> GraphDelta {
        let mut d = GraphDelta::new();
        match ext {
            Some(e) => {
                d.add_vertex_ext("Job", e, vec![]);
            }
            None => {
                d.add_vertex("Job", vec![]);
            }
        }
        d
    }

    #[test]
    fn recover_is_checkpoint_plus_replay() {
        let dir = tmpdir("basic");
        let state = empty_state();
        let extids = ExternalIdTable::new();
        let mut wal = Wal::open(WalConfig::new(&dir), &state, 0, &extids).unwrap();

        let mut live = state;
        for epoch in 1..=3u64 {
            let mut delta = job_delta(Some(100 + epoch));
            delta
                .resolve_external(&extids, live.graph(), &GraphDelta::new())
                .unwrap();
            wal.append_batch(epoch, &delta).unwrap();
            live = live.with_delta(&delta);
        }

        let r = recover_or_fail(&dir).unwrap();
        assert_eq!(r.epoch, 3);
        assert_eq!(r.records_replayed, 3);
        assert_eq!(r.extids.len(), 3);
        same_dense_graph(r.state.graph(), live.graph()).unwrap();
    }

    #[test]
    fn checkpoint_truncates_log_and_prunes() {
        let dir = tmpdir("ckpt");
        let state = empty_state();
        let extids = ExternalIdTable::new();
        let mut wal = Wal::open(WalConfig::new(&dir), &state, 0, &extids).unwrap();
        let mut live = state;
        for epoch in 1..=2u64 {
            let delta = job_delta(None);
            wal.append_batch(epoch, &delta).unwrap();
            live = live.with_delta(&delta);
        }
        wal.checkpoint(&live, 2, &extids).unwrap();
        assert!(!wal.should_checkpoint());
        // exactly one checkpoint file survives, at epoch 2
        let ckpts = list_checkpoints(&dir).unwrap();
        assert_eq!(ckpts.len(), 1);
        assert_eq!(ckpts[0].1, 2);
        // log is back to bare magic
        assert_eq!(fs::metadata(dir.join("wal.log")).unwrap().len(), 8);
        let r = recover_or_fail(&dir).unwrap();
        assert_eq!(r.epoch, 2);
        assert_eq!(r.records_replayed, 0);
        same_dense_graph(r.state.graph(), live.graph()).unwrap();
    }

    #[test]
    fn torn_tail_record_is_skipped() {
        let dir = tmpdir("torn");
        let state = empty_state();
        let extids = ExternalIdTable::new();
        let mut wal = Wal::open(WalConfig::new(&dir), &state, 0, &extids).unwrap();
        let delta = job_delta(None);
        wal.append_batch(1, &delta).unwrap();
        drop(wal);
        // simulate a crash mid-append: a frame header promising more
        // bytes than exist
        let mut f = OpenOptions::new()
            .append(true)
            .open(dir.join("wal.log"))
            .unwrap();
        f.write_all(&[0xFF, 0x00, 0x00, 0x00, 0xAB, 0xCD]).unwrap();
        drop(f);
        let r = recover_or_fail(&dir).unwrap();
        assert_eq!(r.epoch, 1);
        assert_eq!(r.records_replayed, 1);
    }

    #[test]
    fn corrupt_crc_ends_replay_at_intact_prefix() {
        let dir = tmpdir("crc");
        let state = empty_state();
        let extids = ExternalIdTable::new();
        let mut wal = Wal::open(WalConfig::new(&dir), &state, 0, &extids).unwrap();
        wal.append_batch(1, &job_delta(None)).unwrap();
        wal.append_batch(2, &job_delta(None)).unwrap();
        drop(wal);
        // flip a byte in the last record's payload
        let path = dir.join("wal.log");
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x55;
        fs::write(&path, &bytes).unwrap();
        let r = recover_or_fail(&dir).unwrap();
        assert_eq!(r.epoch, 1);
        assert_eq!(r.records_replayed, 1);
    }

    #[test]
    fn compact_marker_replays_deterministically() {
        let dir = tmpdir("compact");
        let state = empty_state();
        let mut extids = ExternalIdTable::new();
        let mut wal = Wal::open(WalConfig::new(&dir), &state, 0, &extids).unwrap();

        // live: add two ext-named vertices, delete the first, compact
        let mut live = state;
        let mut d1 = GraphDelta::new();
        d1.add_vertex_ext("Job", 7, vec![]);
        d1.add_vertex_ext("File", 8, vec![]);
        wal.append_batch(1, &d1).unwrap();
        let base = live.graph().vertex_slots();
        live = live.with_delta(&d1);
        extids.insert(7, VertexId(base as u32)).unwrap();
        extids.insert(8, VertexId((base + 1) as u32)).unwrap();

        let mut d2 = GraphDelta::new();
        d2.del_vertex(VertexId(0));
        wal.append_batch(2, &d2).unwrap();
        live = live.with_delta(&d2);
        extids.remove_slot(VertexId(0));

        wal.append_compact(3).unwrap();
        let (compacted, remap) = live.compact();
        extids.remap(&remap);
        live = compacted;

        let r = recover_or_fail(&dir).unwrap();
        assert_eq!(r.epoch, 3);
        assert_eq!(r.records_replayed, 3);
        same_dense_graph(r.state.graph(), live.graph()).unwrap();
        assert_eq!(r.extids.get(8), extids.get(8));
        assert_eq!(r.extids.get(7), None);
    }

    #[test]
    fn ddl_records_replay_in_epoch_order_with_slots_intact() {
        use kaskade_core::{ConnectorDef, ViewDef};
        let dir = tmpdir("ddl");
        // a base graph the created view can materialize over
        let mut b = GraphBuilder::new();
        let j0 = b.add_vertex("Job");
        let f0 = b.add_vertex("File");
        let j1 = b.add_vertex("Job");
        b.add_edge(j0, f0, "WRITES_TO");
        b.add_edge(f0, j1, "IS_READ_BY");
        let state = Snapshot::new(b.finish(), Schema::provenance());
        let extids = ExternalIdTable::new();
        let mut wal = Wal::open(WalConfig::new(&dir), &state, 0, &extids).unwrap();

        let def2 = ViewDef::Connector(ConnectorDef::k_hop("Job", "Job", 2));
        let def4 = ViewDef::Connector(ConnectorDef::k_hop("Job", "Job", 4));
        // interleave: create, delta batch, create, drop view#0
        let mut live = state;
        wal.append_ddl(1, &DdlOp::CreateView(def2.clone())).unwrap();
        live = live.apply_ddl(&DdlOp::CreateView(def2));
        let delta = job_delta(None);
        wal.append_batch(2, &delta).unwrap();
        live = live.with_delta(&delta);
        wal.append_ddl(3, &DdlOp::CreateView(def4.clone())).unwrap();
        live = live.apply_ddl(&DdlOp::CreateView(def4.clone()));
        wal.append_ddl(4, &DdlOp::DropView(ViewId(0))).unwrap();
        live = live.apply_ddl(&DdlOp::DropView(ViewId(0)));

        let r = recover_or_fail(&dir).unwrap();
        assert_eq!(r.epoch, 4);
        assert_eq!(r.records_replayed, 4);
        same_dense_graph(r.state.graph(), live.graph()).unwrap();
        // the recovered catalog has the exact slot layout: tombstone at
        // slot 0, the 4-hop view still at slot 1
        assert_eq!(r.state.catalog().slot_count(), 2);
        assert!(r.state.catalog().get_by_id(ViewId(0)).is_none());
        let survivor = r.state.catalog().get_by_id(ViewId(1)).unwrap();
        assert_eq!(survivor.def, def4);
        assert_eq!(
            survivor.graph.edge_count(),
            live.catalog()
                .get_by_id(ViewId(1))
                .unwrap()
                .graph
                .edge_count()
        );
    }

    #[test]
    fn fresh_open_refuses_existing_durable_state() {
        let dir = tmpdir("guard");
        let state = empty_state();
        let extids = ExternalIdTable::new();
        let mut wal = Wal::open(WalConfig::new(&dir), &state, 0, &extids).unwrap();
        wal.append_batch(1, &job_delta(None)).unwrap();
        drop(wal);
        // a fresh open would checkpoint-and-truncate over epoch 1:
        // refused without the explicit overwrite flag
        let err = Wal::open(WalConfig::new(&dir), &state, 0, &extids).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
        // recovery still sees everything the guard protected
        assert_eq!(recover_or_fail(&dir).unwrap().epoch, 1);
        // the post-recovery reopen path and the explicit flag both pass
        Wal::open_after_recovery(WalConfig::new(&dir), &state, 1, &extids).unwrap();
        let overwrite = WalConfig {
            overwrite: true,
            ..WalConfig::new(&dir)
        };
        Wal::open(overwrite, &state, 0, &extids).unwrap();
    }

    #[test]
    fn epoch_gap_in_log_fails_recovery() {
        let dir = tmpdir("gap");
        let state = empty_state();
        let extids = ExternalIdTable::new();
        let mut wal = Wal::open(WalConfig::new(&dir), &state, 0, &extids).unwrap();
        wal.append_batch(1, &job_delta(None)).unwrap();
        // epoch 2 never made it to disk: the replayed sequence has a
        // hole, which must fail recovery, not silently skip ahead
        wal.append_batch(3, &job_delta(None)).unwrap();
        drop(wal);
        let err = recover(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn empty_dir_recovers_to_none() {
        let dir = tmpdir("empty");
        assert!(recover(&dir).unwrap().is_none());
        let missing = dir.join("never-created");
        assert!(recover(&missing).unwrap().is_none());
    }
}
