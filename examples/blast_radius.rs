//! The motivating scenario of the paper's introduction: quantify the
//! "blast radius" of job failures on a cluster-scale data-lineage graph
//! (§I-A) — raw graph, schema-level summarizer, and job-to-job
//! connector, with timings at each stage.
//!
//! ```sh
//! cargo run --release --example blast_radius
//! ```

use std::time::Instant;

use kaskade::algos::blast_radius_sum;
use kaskade::core::{Kaskade, SelectionConfig, SummarizerDef, ViewDef};
use kaskade::datasets::{generate_provenance, ProvenanceConfig};
use kaskade::graph::Schema;
use kaskade::query::{listings::LISTING_1, parse, Datum};

fn main() {
    // A week of synthetic cluster provenance: jobs, files, tasks,
    // machines, users.
    let raw = generate_provenance(&ProvenanceConfig {
        jobs: 4_000,
        ..Default::default()
    });
    println!(
        "raw provenance graph: {} vertices, {} edges, types: {:?}",
        raw.vertex_count(),
        raw.edge_count(),
        raw.vertex_type_counts()
            .iter()
            .map(|(t, c)| format!("{t}:{c}"))
            .collect::<Vec<_>>()
    );

    // Stage 1 — schema-level summarizer: the blast-radius query touches
    // only jobs and files, so everything else can be filtered out.
    let schema = Schema::provenance();
    let mut kaskade = Kaskade::new(raw, schema.clone());
    let summarizer = ViewDef::Summarizer(SummarizerDef::VertexInclusion {
        keep: vec!["Job".into(), "File".into()],
    });
    let id = kaskade.materialize_view(summarizer);
    let filtered = kaskade.catalog().get(&id).unwrap().graph.clone();
    println!(
        "after summarizer:     {} vertices, {} edges",
        filtered.vertex_count(),
        filtered.edge_count()
    );

    // Work over the filtered graph from here on (as §VII-B does).
    let mut kaskade = Kaskade::new(filtered, schema);
    let query = parse(LISTING_1).expect("parses");

    let start = Instant::now();
    let raw_result = kaskade.execute(&query).expect("runs");
    let raw_time = start.elapsed();

    // Stage 2 — let view selection pick the job-to-job connector.
    let report =
        kaskade.select_and_materialize(std::slice::from_ref(&query), &SelectionConfig::default());
    for s in &report.scored {
        println!(
            "candidate {:<35} est {:>9.0} edges, improvement {:>6.1}, selected: {}",
            s.def.to_string(),
            s.estimated_edges,
            s.improvement,
            s.selected
        );
    }

    let start = Instant::now();
    let view_result = kaskade.execute(&query).expect("runs on view");
    let view_time = start.elapsed();

    assert_eq!(raw_result.rows.len(), view_result.rows.len());
    println!(
        "\nblast radius over filter graph: {:>10.2?}   over connector view: {:>10.2?}  ({:.1}x)",
        raw_time,
        view_time,
        raw_time.as_secs_f64() / view_time.as_secs_f64().max(1e-12)
    );

    // Show the most expensive pipelines by average downstream CPU.
    let mut rows: Vec<(String, f64)> = view_result
        .rows
        .iter()
        .filter_map(|r| match (&r[0], r[1].as_f64()) {
            (Datum::Val(v), Some(avg)) => Some((v.to_string(), avg)),
            _ => None,
        })
        .collect();
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\ntop pipelines by average downstream CPU (blast radius):");
    for (pipeline, avg) in rows.iter().take(5) {
        println!("  {pipeline:<12} {avg:>10.1}");
    }

    // Sanity: the per-job aggregate agrees with a direct graph traversal
    // for one source job.
    let g = kaskade.graph();
    let first_job = g.vertices_of_type("Job").next();
    if let Some(job) = first_job {
        let direct = blast_radius_sum(g, job, 10, "Job", "CPU");
        println!("\ndirect traversal check (job {job:?}): downstream CPU sum = {direct}");
    }
}
