//! Publication-network analytics over a co-author connector view: the
//! dblp scenario of §VII — find collaboration neighborhoods and
//! communities an order of magnitude faster by contracting
//! author→publication→author paths into one co-author edge.
//!
//! ```sh
//! cargo run --release --example coauthor_analytics
//! ```

use std::time::Instant;

use kaskade::algos::{community_sizes, k_hop_neighborhood, label_propagation, Direction};
use kaskade::core::{materialize, ConnectorDef, SummarizerDef, ViewDef};
use kaskade::datasets::{generate_dblp, DblpConfig};

fn main() {
    let raw = generate_dblp(&DblpConfig::default());
    println!(
        "dblp graph: {} vertices, {} edges",
        raw.vertex_count(),
        raw.edge_count()
    );

    // Keep authors and publications (venues are irrelevant here), then
    // contract author→publication→author into CO_AUTHOR-style edges.
    let filtered = materialize(
        &raw,
        &ViewDef::Summarizer(SummarizerDef::VertexInclusion {
            keep: vec!["Author".into(), "Publication".into()],
        }),
    );
    let connector = materialize(
        &filtered,
        &ViewDef::Connector(ConnectorDef::k_hop("Author", "Author", 2)),
    );
    println!(
        "co-author connector: {} vertices, {} edges (filter graph: {} edges)",
        connector.vertex_count(),
        connector.edge_count(),
        filtered.edge_count()
    );

    // 1. Collaboration neighborhood ("authors within 2 collaboration
    //    steps"), over both representations.
    let author = filtered
        .vertices_of_type("Author")
        .max_by_key(|&a| filtered.out_degree(a))
        .expect("at least one author");
    let start = Instant::now();
    let raw_nbors = k_hop_neighborhood(&filtered, author, 4, Direction::Forward)
        .into_iter()
        .filter(|(v, _)| filtered.vertex_type(*v) == "Author")
        .count();
    let raw_time = start.elapsed();

    let conn_author = connector
        .vertices_of_type("Author")
        .max_by_key(|&a| connector.out_degree(a))
        .expect("author in view");
    let start = Instant::now();
    let conn_nbors = k_hop_neighborhood(&connector, conn_author, 2, Direction::Forward).len();
    let conn_time = start.elapsed();
    println!("\n2-step collaboration neighborhood of the most prolific author:");
    println!("  filter graph:    {raw_nbors:>6} authors in {raw_time:?}");
    println!("  connector view:  {conn_nbors:>6} authors in {conn_time:?}");

    // 2. Community detection (Q7/Q8): label propagation over the
    //    co-author view finds research groups in a fraction of the time.
    let start = Instant::now();
    let filter_comm = label_propagation(&filtered, 25);
    let filter_time = start.elapsed();
    let start = Instant::now();
    let view_comm = label_propagation(&connector, 13);
    let view_time = start.elapsed();
    let filter_sizes = community_sizes(&filter_comm);
    let view_sizes = community_sizes(&view_comm);
    println!("\ncommunity detection (label propagation):");
    println!(
        "  filter graph:   {} communities in {:?} ({} passes)",
        filter_sizes.len(),
        filter_time,
        filter_comm.passes
    );
    println!(
        "  connector view: {} communities in {:?} ({} passes, {:.1}x faster)",
        view_sizes.len(),
        view_time,
        view_comm.passes,
        filter_time.as_secs_f64() / view_time.as_secs_f64().max(1e-12)
    );
    println!(
        "  largest research groups (view): {:?}",
        view_sizes
            .iter()
            .take(5)
            .map(|(_, s)| *s)
            .collect::<Vec<_>>()
    );
}
