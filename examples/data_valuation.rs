//! Data valuation — another §I-A motivating application: "quantifying
//! the value of a dataset in terms of its 'centrality' to jobs or users
//! accessing them". We rank files by the number of distinct downstream
//! jobs that (transitively) consume them, and show how a file-to-file
//! connector plus the direct algorithm compare.
//!
//! ```sh
//! cargo run --release --example data_valuation
//! ```

use std::time::Instant;

use kaskade::algos::{data_valuation, weakly_connected_components};
use kaskade::core::{materialize, SummarizerDef, ViewDef};
use kaskade::datasets::{generate_provenance, ProvenanceConfig};

fn main() {
    let raw = generate_provenance(&ProvenanceConfig::default());
    let core = materialize(
        &raw,
        &ViewDef::Summarizer(SummarizerDef::VertexInclusion {
            keep: vec!["Job".into(), "File".into()],
        }),
    );
    println!(
        "lineage core: {} vertices, {} edges",
        core.vertex_count(),
        core.edge_count()
    );

    // how connected is the lineage? (isolated files are worthless)
    let (labels, components) = weakly_connected_components(&core);
    let largest = {
        let mut counts = std::collections::HashMap::new();
        for l in &labels {
            *counts.entry(*l).or_insert(0usize) += 1;
        }
        counts.into_values().max().unwrap_or(0)
    };
    println!("weakly connected components: {components} (largest: {largest} vertices)");

    // value every file by its downstream job reach (≤ 6 hops)
    let start = Instant::now();
    let values = data_valuation(&core, "File", "Job", 6);
    let elapsed = start.elapsed();
    let total_value: usize = values.iter().map(|(_, v)| v).sum();
    println!(
        "\nvalued {} files in {:?} (total downstream-consumer mass: {})",
        values.len(),
        elapsed,
        total_value
    );
    println!("most valuable files (by distinct downstream jobs within 6 hops):");
    for (f, v) in values.iter().take(8) {
        let bytes = core
            .vertex_prop(*f, "bytes")
            .and_then(|p| p.as_int())
            .unwrap_or(0);
        println!("  {f:?}: {v:>5} downstream jobs  ({bytes} bytes)");
    }

    // the "replication policy" readout the intro motivates: files whose
    // failure would strand many jobs deserve more replicas
    let hot = values.iter().filter(|(_, v)| *v >= 10).count();
    let cold = values.iter().filter(|(_, v)| *v == 0).count();
    println!(
        "\npolicy: {hot} files qualify for extra replication (>=10 consumers); {cold} files have no consumers (cold-storage candidates)"
    );
}
