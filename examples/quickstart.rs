//! Quickstart: build a property graph, ask Kaskade for views, and watch
//! the same query run over a materialized connector.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use kaskade::core::{Kaskade, SelectionConfig};
use kaskade::graph::{GraphBuilder, Schema, Value};
use kaskade::query::{listings::LISTING_1, parse};

fn main() {
    // 1. Build a small data-lineage graph: jobs write files, files are
    //    read by downstream jobs (the paper's running example, Fig. 1).
    let mut b = GraphBuilder::new();
    let mut jobs = Vec::new();
    for i in 0..6 {
        let j = b.add_vertex("Job");
        b.set_vertex_prop(j, "CPU", Value::Int(10 * (i as i64 + 1)));
        b.set_vertex_prop(j, "pipelineName", Value::Str(format!("p{}", i % 2)));
        jobs.push(j);
    }
    // j0 -> j1 -> j2 and j0 -> j3 -> j4, j5 isolated, each hop via a file
    for (src, dst) in [(0, 1), (1, 2), (0, 3), (3, 4)] {
        let f = b.add_vertex("File");
        b.add_edge(jobs[src], f, "WRITES_TO");
        b.add_edge(f, jobs[dst], "IS_READ_BY");
    }
    b.validate(&Schema::provenance())
        .expect("schema-conformant");
    let graph = b.finish();
    println!(
        "input graph: {} vertices, {} edges",
        graph.vertex_count(),
        graph.edge_count()
    );

    // 2. Wrap it in Kaskade and run the paper's blast-radius query
    //    (Listing 1) over the raw graph.
    let mut kaskade = Kaskade::new(graph, Schema::provenance());
    let query = parse(LISTING_1).expect("query parses");
    let raw_result = kaskade.execute(&query).expect("query runs");
    println!("\nblast radius over the raw graph:");
    for row in &raw_result.rows {
        println!("  pipeline {:>3}  avg downstream CPU {:>8}", row[0], row[1]);
    }

    // 3. Let the workload analyzer pick and materialize views for this
    //    workload (it will choose the job-to-job 2-hop connector).
    let report =
        kaskade.select_and_materialize(std::slice::from_ref(&query), &SelectionConfig::default());
    println!("\nmaterialized views:");
    for id in &report.materialized {
        let view = kaskade.catalog().get(id).unwrap();
        println!(
            "  {id}  ({} vertices, {} edges)",
            view.graph.vertex_count(),
            view.graph.edge_count()
        );
    }

    // 4. The same query is now automatically rewritten onto the view.
    let plan = kaskade.plan(&query).expect("plans");
    let routed = plan
        .view_id
        .and_then(|id| kaskade.catalog().get_by_id(id))
        .map(|v| v.def.id());
    println!(
        "\nplanned target: {}",
        routed.as_deref().unwrap_or("raw graph")
    );
    let view_result = kaskade.execute(&query).expect("query runs on view");
    assert_eq!(raw_result.len(), view_result.len());
    println!(
        "view-based result matches the raw result ({} rows)",
        view_result.len()
    );
}
