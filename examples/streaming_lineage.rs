//! Incremental view maintenance on a growing lineage graph: provenance
//! only ever grows (new jobs, files and reads are appended), so
//! connector views can be refreshed by recomputing only the
//! neighborhood of each change instead of re-materializing.
//!
//! ```sh
//! cargo run --release --example streaming_lineage
//! ```

use std::time::Instant;

use kaskade::core::{apply_delta, ConnectorDef, GraphDelta, VRef, ViewDef};
use kaskade::datasets::{generate_provenance, ProvenanceConfig};
use kaskade::graph::Value;

fn main() {
    let base = generate_provenance(&ProvenanceConfig::default().core_only());
    let def = ViewDef::Connector(ConnectorDef::k_hop("Job", "Job", 2));
    let maintainer = def.maintainer();
    let mut view = maintainer.materialize(&base);
    let mut graph = base;
    println!(
        "initial: base {} edges, job-to-job connector {} edges",
        graph.edge_count(),
        view.edge_count()
    );

    let mut total_incremental = 0.0;
    let mut total_full = 0.0;
    for wave in 0..10 {
        // a scheduling wave: 20 new jobs, each reading 2 recent files and
        // writing one new file
        let mut delta = GraphDelta::new();
        let recent_files: Vec<_> = graph.vertices_of_type("File").rev_take(40);
        for i in 0..20 {
            let j = delta.add_vertex(
                "Job",
                vec![
                    ("CPU".into(), Value::Int(100 + i)),
                    ("pipelineName".into(), Value::Str(format!("wave{wave}"))),
                ],
            );
            for k in 0..2 {
                let f = recent_files[(i as usize * 2 + k) % recent_files.len()];
                delta.add_edge(VRef::Existing(f), j, "IS_READ_BY", vec![]);
            }
            let nf = delta.add_vertex("File", vec![]);
            delta.add_edge(j, nf, "WRITES_TO", vec![]);
        }

        let applied = apply_delta(&graph, &delta);

        let start = Instant::now();
        let incremental = maintainer.refresh(&view, &applied).graph;
        let t_inc = start.elapsed().as_secs_f64();

        let start = Instant::now();
        let full = maintainer.materialize(&applied.graph);
        let t_full = start.elapsed().as_secs_f64();

        assert_eq!(incremental.edge_count(), full.edge_count());
        total_incremental += t_inc;
        total_full += t_full;
        println!(
            "wave {wave:>2}: +{} edges -> connector {} edges | incremental {:>8.3} ms vs full {:>8.3} ms ({:>5.1}x)",
            delta.edges.len(),
            incremental.edge_count(),
            t_inc * 1e3,
            t_full * 1e3,
            t_full / t_inc.max(1e-12)
        );
        view = incremental;
        graph = applied.graph;
    }
    println!(
        "\ntotal maintenance time: incremental {:.1} ms, full {:.1} ms ({:.1}x saved)",
        total_incremental * 1e3,
        total_full * 1e3,
        total_full / total_incremental.max(1e-12)
    );
}

/// Tiny helper: last `n` items of an iterator as a Vec.
trait RevTake: Iterator {
    fn rev_take(self, n: usize) -> Vec<Self::Item>
    where
        Self: Sized,
    {
        let mut all: Vec<_> = self.collect();
        let start = all.len().saturating_sub(n);
        all.drain(..start);
        all
    }
}
impl<I: Iterator> RevTake for I {}
