//! The "view advisor" workflow: inspect what Kaskade's constraint-based
//! enumeration derives for a workload, how the cost model scores each
//! candidate, and why the knapsack accepts or rejects it — including
//! the homogeneous power-law case where the right answer is *not* to
//! materialize (§VII-F).
//!
//! ```sh
//! cargo run --release --example view_advisor
//! ```

use kaskade::core::{select_views, Kaskade, SelectionConfig};
use kaskade::datasets::Dataset;
use kaskade::graph::GraphStats;
use kaskade::query::{listings::LISTING_1, parse};

fn main() {
    // ------------------------------------------------------------------
    // Part 1: heterogeneous workload — the blast-radius query on prov.
    // ------------------------------------------------------------------
    let prov = Dataset::Prov.generate(1, 42);
    let kaskade = Kaskade::new(prov, Dataset::Prov.schema());
    let query = parse(LISTING_1).expect("parses");

    let enumeration = kaskade.enumerate(&query).expect("enumerates");
    println!(
        "constraint-based enumeration for the blast-radius query ({} inference steps):",
        enumeration.inference_steps
    );
    for c in &enumeration.candidates {
        println!("  {c:?}");
    }

    // ------------------------------------------------------------------
    // Part 2: scoring + knapsack on the summarized prov graph.
    // ------------------------------------------------------------------
    let filtered = Dataset::Prov.generate(1, 42);
    let core = kaskade::core::materialize(
        &filtered,
        &kaskade::core::ViewDef::Summarizer(kaskade::core::SummarizerDef::VertexInclusion {
            keep: vec!["Job".into(), "File".into()],
        }),
    );
    let stats = GraphStats::compute(&core);
    let schema = kaskade::graph::Schema::provenance();
    let result = select_views(
        &core,
        &stats,
        &schema,
        std::slice::from_ref(&query),
        &SelectionConfig::default(),
    );
    println!(
        "\nscored candidates on prov (budget {} edges):",
        SelectionConfig::default().budget_edges
    );
    for s in &result.scored {
        println!(
            "  {:<40} est {:>10.0} edges  improvement {:>7.1}  value {:>9.5}  -> {}",
            s.def.to_string(),
            s.estimated_edges,
            s.improvement,
            s.value,
            if s.selected { "MATERIALIZE" } else { "skip" }
        );
    }

    // ------------------------------------------------------------------
    // Part 3: the homogeneous power-law counter-example. The 2-hop
    // connector on a social graph is predicted (and is) larger than the
    // input graph; under a budget proportional to the input, the
    // knapsack correctly refuses it.
    // ------------------------------------------------------------------
    let soc = Dataset::SocLivejournal.generate(1, 42);
    let soc_stats = GraphStats::compute(&soc);
    let soc_schema = Dataset::SocLivejournal.schema();
    let soc_query =
        parse("SELECT COUNT(*) FROM (MATCH (a:User)-[:FOLLOWS*1..4]->(b:User) RETURN a, b)")
            .expect("parses");
    let budget = (2 * soc.edge_count()) as u64;
    let soc_result = select_views(
        &soc,
        &soc_stats,
        &soc_schema,
        std::slice::from_ref(&soc_query),
        &SelectionConfig {
            budget_edges: budget,
            alpha: 95,
        },
    );
    println!(
        "\nsoc-livejournal ({} edges, budget {} edges):",
        soc.edge_count(),
        budget
    );
    if soc_result.scored.iter().any(|s| s.selected) {
        for s in soc_result.scored.iter().filter(|s| s.selected) {
            println!("  selected {} (est {:.0})", s.def, s.estimated_edges);
        }
    } else {
        println!("  no view selected — α=95 predicts connectors larger than the graph,");
        println!("  matching §VII-F: \"these 2-hop connector views are unlikely to be");
        println!("  materialized for the two homogeneous networks\"");
        for s in &soc_result.scored {
            println!(
                "  (candidate {} est {:.0} edges, improvement {:.2})",
                s.def, s.estimated_edges, s.improvement
            );
        }
    }
}
