//! `kaskade` — the CLI over the framework and its serving runtime.
//!
//! ```text
//! kaskade query <dataset> [options] <query | @listing1 | @listing4>
//! kaskade serve <dataset> [options] [query ...]
//!
//!   dataset:        prov | dblp | roadnet-usa | soc-livejournal
//!
//! shared options:
//!   --views [composed]  run view selection for the workload before
//!                   starting; `--views composed` skips selection and
//!                   materializes the fixed composed-DAG catalog
//!                   (connector + aggregator + source-sink + a
//!                   summarizer OVER the connector) instead
//!   --scale N       dataset scale factor            (default 1)
//!   --seed N        dataset generator seed          (default 0x5EED)
//!   --threads N     reader threads                  (default 1 / 4)
//!
//! serve options:
//!   --duration-ms N run the serving loop this long  (default 2000)
//!   --write-every-ms N  delta cadence; 0 = no writer (default 2)
//!   --workload W    append | churn | hotkey | burst (default append)
//!   --shards N      partition the graph over N engines (default 1)
//!   --pool-threads N    worker threads in the persistent scatter /
//!                       merge / refresh pool (default 0 = cores - 1)
//!   --compact-ratio F   dead-slot fraction triggering slot compaction
//!                       (default 0.5)
//!   --expect-compaction fail unless the run compacted and ended with
//!                       slot capacity bounded (the long-churn CI gate)
//!   --expect-incremental fail unless every view refresh after startup
//!                       was incremental: `views_rematerialized` must
//!                       stay 0 while `views_refreshed` grows (the
//!                       refresh-DAG CI gate)
//!   --smoke         short self-checking run for CI (implies --views)
//!
//! serve adaptive options:
//!   --adaptive      run the background view-admission advisor: drain
//!                   the workload sensors (miss log + per-view benefit
//!                   counters) on a cadence, re-run §V selection
//!                   against the live statistics, and migrate the
//!                   catalog through live DDL under hysteresis
//!   --advise-every N    advisor tick cadence in ms   (default 250)
//!   --view-budget N     knapsack space budget in edges handed to the
//!                       advisor's selection (default: selection's)
//!   --expect-adaptation fail unless the advisor migrated the catalog
//!                   at least once with zero consistency violations
//!                   and zero view re-materializations (the
//!                   self-driving CI gate; implies --adaptive and the
//!                   per-read consistency verification)
//!
//! serve observability options:
//!   --trace on|off  structured span tracing into the in-process
//!                   flight recorder (default off; off costs one
//!                   relaxed atomic load per span site)
//!   --trace-dump    print the flight-recorder contents on exit
//!   --slow-query-ms F   log queries slower than F ms (fractional ok)
//!                   into the flight recorder, tracing on or off
//!   --metrics-addr A    serve Prometheus text at http://A/metrics
//!                   (plus /healthz and /trace); port 0 picks a free
//!                   port, printed on stderr
//!   --stats-interval N  print the metrics report every N ms while
//!                   serving (0 = off)
//!   --stats-json    print the final outcome as one JSON line on
//!                   stdout (machine-readable; CI's overhead gate
//!                   consumes it)
//!
//! serve durability options:
//!   --wal-dir PATH  append every published batch to an epoch-tagged
//!                   write-ahead log in PATH and checkpoint the dense
//!                   state there (created if missing)
//!   --checkpoint-every N  checkpoint after N logged batches
//!                   (default 64; bounds log growth and replay time)
//!   --no-fsync      skip the per-record fsync (group commit still
//!                   batches; a power loss may drop the last records)
//!   --recover       resume from --wal-dir: latest checkpoint + replay
//!                   of the log tail, instead of the generated dataset
//!                   (warns and starts fresh if the directory is empty;
//!                   implies the end-of-run consistency verification)
//!   --wal-overwrite discard durable state already in --wal-dir and
//!                   start fresh; without it (or --recover) a fresh
//!                   start refuses a non-empty WAL directory rather
//!                   than silently wiping a previous run's data
//! ```
//!
//! `query` plans and executes one query — with `--threads N > 1` it
//! executes through the serving engine on N concurrent readers and
//! reports per-thread agreement. `serve` stands up the full runtime:
//! N reader threads loop the workload while a writer streams scripted
//! schema-valid deltas; on exit it prints the engine metrics (reads/s,
//! latency quantiles, plan-cache hit rate, refresh lag). With
//! `--shards N > 1` the base graph partitions across N per-shard
//! engines behind a scatter/gather router — same results, parallel
//! write path — and per-shard metrics are printed too.
//!
//! Examples:
//!
//! ```sh
//! cargo run --release --bin kaskade -- query prov --views @listing1
//! cargo run --release --bin kaskade -- serve prov --threads 8 --duration-ms 3000
//! cargo run --release --bin kaskade -- serve prov --smoke
//! ```

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use kaskade::core::{Kaskade, SelectionConfig};
use kaskade::datasets::Dataset;
use kaskade::query::{listings, parse, Query, Table};
use kaskade::service::{
    drive, Advisor, AdvisorConfig, DriveConfig, DriveOutcome, Engine, EngineConfig, MetricsServer,
    Observable, ShardedConfig, ShardedEngine, Tracer, WalConfig, Workload,
};

fn usage() -> ExitCode {
    eprintln!(
        "usage: kaskade query <prov|dblp|roadnet-usa|soc-livejournal> [--views] [--scale N] \
         [--seed N] [--threads N] <query|@listing1|@listing4>\n       \
         kaskade serve <prov|dblp|roadnet-usa|soc-livejournal> [--views [composed]] [--scale N] \
         [--seed N] [--threads N] [--duration-ms N] [--write-every-ms N] [--workload W] \
         [--shards N] [--pool-threads N] [--compact-ratio F] [--expect-compaction] \
         [--expect-incremental] [--smoke] \
         [--adaptive] [--advise-every N] [--view-budget N] [--expect-adaptation] \
         [--trace on|off] [--trace-dump] [--slow-query-ms F] [--metrics-addr ADDR] \
         [--stats-interval N] [--stats-json] \
         [--wal-dir PATH] [--checkpoint-every N] [--no-fsync] [--recover] [--wal-overwrite] \
         [query ...]"
    );
    ExitCode::from(2)
}

/// Options shared by both subcommands, parsed from the tail of argv.
struct CommonArgs {
    with_views: bool,
    composed_views: bool,
    scale: usize,
    seed: u64,
    threads: Option<usize>,
    duration_ms: u64,
    write_every_ms: u64,
    workload: Workload,
    shards: usize,
    pool_threads: usize,
    compact_ratio: f64,
    expect_compaction: bool,
    expect_incremental: bool,
    adaptive: bool,
    advise_every_ms: u64,
    view_budget: u64,
    expect_adaptation: bool,
    smoke: bool,
    trace: bool,
    trace_dump: bool,
    slow_query_ms: f64,
    metrics_addr: Option<String>,
    stats_interval_ms: u64,
    stats_json: bool,
    wal_dir: Option<String>,
    checkpoint_every: u64,
    no_fsync: bool,
    recover: bool,
    wal_overwrite: bool,
    queries: Vec<String>,
}

fn parse_common(args: impl Iterator<Item = String>) -> Option<CommonArgs> {
    let mut c = CommonArgs {
        with_views: false,
        composed_views: false,
        scale: 1,
        seed: 0x5EED,
        threads: None,
        duration_ms: 2_000,
        write_every_ms: 2,
        workload: Workload::Append,
        shards: 1,
        pool_threads: 0,
        compact_ratio: EngineConfig::default().compact_dead_ratio,
        expect_compaction: false,
        expect_incremental: false,
        adaptive: false,
        advise_every_ms: AdvisorConfig::default().every.as_millis() as u64,
        view_budget: AdvisorConfig::default().budget_edges,
        expect_adaptation: false,
        smoke: false,
        trace: false,
        trace_dump: false,
        slow_query_ms: 0.0,
        metrics_addr: None,
        stats_interval_ms: 0,
        stats_json: false,
        wal_dir: None,
        checkpoint_every: WalConfig::new(".").checkpoint_every,
        no_fsync: false,
        recover: false,
        wal_overwrite: false,
        queries: Vec::new(),
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--views" => {
                c.with_views = true;
                if args.peek().map(String::as_str) == Some("composed") {
                    args.next();
                    c.composed_views = true;
                }
            }
            "--smoke" => c.smoke = true,
            "--scale" => c.scale = args.next()?.parse().ok()?,
            "--seed" => c.seed = args.next()?.parse().ok()?,
            "--threads" => c.threads = Some(args.next()?.parse().ok()?),
            "--duration-ms" => c.duration_ms = args.next()?.parse().ok()?,
            "--write-every-ms" => c.write_every_ms = args.next()?.parse().ok()?,
            "--workload" => c.workload = Workload::parse(&args.next()?)?,
            "--shards" => c.shards = args.next()?.parse().ok()?,
            "--pool-threads" => c.pool_threads = args.next()?.parse().ok()?,
            "--compact-ratio" => {
                c.compact_ratio = args.next()?.parse().ok().filter(|&r: &f64| r > 0.0)?
            }
            "--expect-compaction" => c.expect_compaction = true,
            "--expect-incremental" => c.expect_incremental = true,
            "--adaptive" => c.adaptive = true,
            "--advise-every" => {
                c.advise_every_ms = args.next()?.parse().ok().filter(|&n: &u64| n > 0)?
            }
            "--view-budget" => c.view_budget = args.next()?.parse().ok()?,
            "--expect-adaptation" => c.expect_adaptation = true,
            "--trace" => match args.next()?.as_str() {
                "on" => c.trace = true,
                "off" => c.trace = false,
                _ => return None,
            },
            "--trace-dump" => c.trace_dump = true,
            "--slow-query-ms" => {
                c.slow_query_ms = args.next()?.parse().ok().filter(|v: &f64| *v >= 0.0)?
            }
            "--metrics-addr" => c.metrics_addr = Some(args.next()?),
            "--stats-interval" => c.stats_interval_ms = args.next()?.parse().ok()?,
            "--stats-json" => c.stats_json = true,
            "--wal-dir" => c.wal_dir = Some(args.next()?),
            "--checkpoint-every" => {
                c.checkpoint_every = args.next()?.parse().ok().filter(|&n: &u64| n > 0)?
            }
            "--no-fsync" => c.no_fsync = true,
            "--recover" => c.recover = true,
            "--wal-overwrite" => c.wal_overwrite = true,
            "@listing1" => c.queries.push(listings::LISTING_1.to_string()),
            "@listing4" => c.queries.push(listings::LISTING_4.to_string()),
            other if other.starts_with("--") => return None,
            other => c.queries.push(other.to_string()),
        }
    }
    Some(c)
}

fn load(dataset: Dataset, c: &CommonArgs) -> Kaskade {
    let start = Instant::now();
    let graph = dataset.generate(c.scale, c.seed);
    eprintln!(
        "loaded {} (scale {}, seed {:#x}): {} vertices, {} edges in {:.2?}",
        dataset.short_name(),
        c.scale,
        c.seed,
        graph.vertex_count(),
        graph.edge_count(),
        start.elapsed()
    );
    Kaskade::new(graph, dataset.schema())
}

fn parse_workload(sources: &[String]) -> Result<Vec<Query>, ExitCode> {
    let mut queries = Vec::new();
    for src in sources {
        match parse(src) {
            Ok(q) => queries.push(q),
            Err(e) => {
                eprintln!("query error: {e}");
                return Err(ExitCode::FAILURE);
            }
        }
    }
    Ok(queries)
}

/// The `--views composed` catalog: a fixed 4-view refresh DAG over the
/// dataset's anchor type — a 2-hop connector, a summarizer composed
/// *over* that connector (so the DAG has a second level), a
/// source-to-sink contraction, and (on prov, whose jobs carry the
/// props) a pipeline CPU aggregator.
fn materialize_composed_preset(kaskade: &mut Kaskade, dataset: Dataset) {
    use kaskade::core::{
        ComposedDef, ConnectorDef, PropPredicate, SourceSinkDef, SummarizerDef, ViewDef,
    };
    let anchor = dataset.anchor_type();
    let connector = ConnectorDef::k_hop(anchor, anchor, 2);
    let mut defs = vec![
        ViewDef::Connector(connector.clone()),
        ViewDef::Composed(ComposedDef {
            connector,
            summarizer: SummarizerDef::EdgePredicate {
                keep: PropPredicate::IntAtLeast("support".into(), 2),
            },
        }),
        ViewDef::SourceSink(SourceSinkDef::default()),
    ];
    if dataset == Dataset::Prov {
        defs.push(ViewDef::Summarizer(SummarizerDef::VertexAggregator {
            vtype: "Job".into(),
            group_prop: "pipelineName".into(),
            agg_prop: "CPU".into(),
            agg: kaskade::core::AggOp::Sum,
        }));
    }
    let start = Instant::now();
    let names: Vec<String> = defs
        .into_iter()
        .map(|d| kaskade.materialize_view(d))
        .collect();
    eprintln!(
        "composed preset: materialized {} view(s) in {:.2?}: {}",
        names.len(),
        start.elapsed(),
        names.join(", ")
    );
}

fn select_views(kaskade: &mut Kaskade, workload: &[Query]) {
    let start = Instant::now();
    let report = kaskade.select_and_materialize(workload, &SelectionConfig::default());
    eprintln!(
        "view selection: {} candidate(s) scored, materialized {:?} in {:.2?}",
        report.scored.len(),
        report.materialized,
        start.elapsed()
    );
}

fn print_table(table: &Table) {
    println!("{}", table.columns.join("\t"));
    for row in table.rows.iter().take(25) {
        let cells: Vec<String> = row.iter().map(|d| d.to_string()).collect();
        println!("{}", cells.join("\t"));
    }
    if table.len() > 25 {
        println!("... ({} rows total)", table.len());
    }
}

fn cmd_query(dataset: Dataset, c: CommonArgs) -> ExitCode {
    if c.queries.len() != 1 {
        eprintln!("`kaskade query` takes exactly one query");
        return usage();
    }
    let workload = match parse_workload(&c.queries) {
        Ok(w) => w,
        Err(code) => return code,
    };
    let query = &workload[0];
    let mut kaskade = load(dataset, &c);
    if c.composed_views {
        materialize_composed_preset(&mut kaskade, dataset);
    } else if c.with_views {
        select_views(&mut kaskade, &workload);
    }

    let plan = match kaskade.plan(query) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("planning error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let routed = plan
        .view_id
        .and_then(|id| kaskade.catalog().get_by_id(id))
        .map(|v| v.def.id());
    eprintln!(
        "plan: {} (estimated cost {:.0})",
        routed.as_deref().unwrap_or("raw graph"),
        plan.estimated_cost
    );

    let threads = c.threads.unwrap_or(1).max(1);
    if threads == 1 {
        let start = Instant::now();
        let table = match kaskade.execute(query) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("execution error: {e}");
                return ExitCode::FAILURE;
            }
        };
        let elapsed = start.elapsed();
        print_table(&table);
        eprintln!("{} row(s) in {:.2?}", table.len(), elapsed);
        return ExitCode::SUCCESS;
    }

    // concurrent execution through the serving engine: every thread
    // must see the same snapshot and produce the same table
    let engine = Engine::from_kaskade(&kaskade);
    let start = Instant::now();
    let results: Vec<Result<Table, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let engine = &engine;
                scope.spawn(move || {
                    let mut reader = engine.reader();
                    engine
                        .execute_with(&mut reader, query)
                        .map_err(|e| e.to_string())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("reader thread panicked"))
            .collect()
    });
    let elapsed = start.elapsed();
    let mut tables = Vec::new();
    for r in results {
        match r {
            Ok(t) => tables.push(t),
            Err(e) => {
                eprintln!("execution error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let first = format!("{:?}", tables[0].rows);
    let agree = tables.iter().all(|t| format!("{:?}", t.rows) == first);
    print_table(&tables[0]);
    eprintln!(
        "{} row(s) on each of {threads} concurrent readers ({}) in {:.2?}",
        tables[0].len(),
        if agree { "all agree" } else { "DISAGREE" },
        elapsed
    );
    if agree {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Background observability attached to one serve run: the optional
/// scrape endpoint thread and the optional periodic stats printer.
struct ObservabilityRig {
    server: Option<MetricsServer>,
    stop: Arc<AtomicBool>,
    printer: Option<std::thread::JoinHandle<()>>,
}

fn start_observability(
    c: &CommonArgs,
    backend: Arc<dyn Observable>,
) -> Result<ObservabilityRig, ExitCode> {
    let server = match &c.metrics_addr {
        Some(addr) => match MetricsServer::bind(addr, Arc::clone(&backend)) {
            Ok(server) => {
                // tests bind port 0 and read the resolved port here
                eprintln!("metrics endpoint on http://{}/metrics", server.addr());
                Some(server)
            }
            Err(e) => {
                eprintln!("--metrics-addr {addr}: {e}");
                return Err(ExitCode::FAILURE);
            }
        },
        None => None,
    };
    let stop = Arc::new(AtomicBool::new(false));
    let printer = (c.stats_interval_ms > 0).then(|| {
        let stop = Arc::clone(&stop);
        let every = Duration::from_millis(c.stats_interval_ms);
        std::thread::spawn(move || {
            let mut next = Instant::now() + every;
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(10).min(every));
                if Instant::now() >= next {
                    eprintln!("--- stats ---\n{}", backend.scrape_report());
                    next += every;
                }
            }
        })
    });
    Ok(ObservabilityRig {
        server,
        stop,
        printer,
    })
}

impl ObservabilityRig {
    /// Stops the printer and the endpoint (joining both threads).
    fn finish(self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(printer) = self.printer {
            let _ = printer.join();
        }
        drop(self.server);
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// The `--stats-json` line: the final outcome and report as one JSON
/// object (hand-rolled — the whole repo builds offline, so no serde).
fn outcome_json(outcome: &DriveOutcome, tracer: &Tracer, counts: (usize, usize)) -> String {
    use std::fmt::Write as _;
    let r = &outcome.report;
    let mut s = String::with_capacity(1024);
    let _ = write!(
        s,
        "{{\"vertices\":{},\"edges\":{},\
         \"reads\":{},\"read_errors\":{},\"reads_per_sec\":{:.1},\"writes\":{},\
         \"writes_backpressured\":{},\"consistency_violations\":{},\"final_consistent\":{},\
         \"epoch\":{},\"deltas_applied\":{},\"batches_published\":{},\"views_refreshed\":{},\
         \"views_rematerialized\":{},\"views_created\":{},\"views_dropped\":{},\
         \"advisor_migrations\":{},\"compactions_run\":{},\"slots_reclaimed\":{},\
         \"plan_cache_hit_rate\":{:.4},\"p50_ns\":{},\"p99_ns\":{},\"apply_p50_ns\":{},\
         \"apply_p99_ns\":{},\"apply_total_ns\":{},\"queue_depth\":{},\"slow_queries\":{},\
         \"trace_dropped_events\":{},\"per_view\":[",
        counts.0,
        counts.1,
        outcome.reads,
        outcome.read_errors,
        outcome.reads_per_sec(),
        outcome.writes,
        outcome.writes_backpressured,
        outcome.consistency_violations,
        outcome.final_consistent,
        r.epoch,
        r.deltas_applied,
        r.batches_published,
        r.views_refreshed,
        r.views_rematerialized,
        r.views_created,
        r.views_dropped,
        r.advisor_migrations,
        r.compactions_run,
        r.slots_reclaimed,
        r.plan_cache_hit_rate(),
        r.p50.as_nanos(),
        r.p99.as_nanos(),
        r.apply_p50.as_nanos(),
        r.apply_p99.as_nanos(),
        r.apply_total.as_nanos(),
        r.queue_depth,
        tracer.slow_queries(),
        tracer.dropped_events(),
    );
    for (i, v) in r.per_view.iter().enumerate() {
        let _ = write!(
            s,
            "{}{{\"name\":\"{}\",\"level\":{},\"refreshes\":{},\"rematerialized\":{},\
             \"recomputed\":{},\"p50_ns\":{},\"p99_ns\":{},\"total_ns\":{},\"last_ns\":{}}}",
            if i > 0 { "," } else { "" },
            json_escape(&v.name),
            v.level,
            v.refreshes,
            v.rematerialized,
            v.recomputed,
            v.refresh_p50.as_nanos(),
            v.refresh_p99.as_nanos(),
            v.refresh_total.as_nanos(),
            v.last_refresh.as_nanos(),
        );
    }
    s.push_str("]}");
    s
}

fn cmd_serve(dataset: Dataset, mut c: CommonArgs) -> ExitCode {
    if c.smoke {
        // a short, self-checking preset for CI
        c.with_views = true;
        c.duration_ms = c.duration_ms.min(500);
        c.write_every_ms = c.write_every_ms.max(1);
    }
    if c.expect_adaptation {
        // the gate is meaningless without the advisor actually running
        c.adaptive = true;
    }
    if c.queries.is_empty() {
        c.queries.push(listings::LISTING_1.to_string());
    }
    let workload = match parse_workload(&c.queries) {
        Ok(w) => w,
        Err(code) => return code,
    };
    let mut kaskade = load(dataset, &c);
    if c.composed_views {
        materialize_composed_preset(&mut kaskade, dataset);
    } else if c.with_views {
        select_views(&mut kaskade, &workload);
    }

    let threads = c.threads.unwrap_or(4);
    let shards = c.shards;
    let cfg = DriveConfig {
        readers: threads,
        duration: Duration::from_millis(c.duration_ms),
        read_pause: Duration::ZERO,
        write_pause: Duration::from_millis(c.write_every_ms),
        max_writes: 0,
        // a recovered state must also survive the scratch-rebuild
        // comparison — recovery correctness is exactly what is at
        // stake; --expect-adaptation gates on zero violations, so it
        // must count them
        verify_consistency: c.smoke || c.recover || c.expect_adaptation,
        workload: c.workload,
    };
    eprintln!(
        "serving {} with {threads} reader thread(s), {} quer{}, `{}` writer every {}ms, \
         {shards} shard(s), for {}ms",
        dataset.short_name(),
        workload.len(),
        if workload.len() == 1 { "y" } else { "ies" },
        c.workload,
        c.write_every_ms,
        c.duration_ms
    );
    // the span/flight-recorder subsystem: shared by the engine (or the
    // router plus every shard), the scrape endpoint, and the dumps
    let tracer = Arc::new(Tracer::new(c.trace));
    if c.slow_query_ms > 0.0 {
        tracer.set_slow_query_threshold(Some(Duration::from_secs_f64(c.slow_query_ms / 1000.0)));
    }
    // durability: every published batch appends to the WAL before it
    // becomes visible, and the dense state checkpoints periodically
    let wal = |c: &CommonArgs| {
        c.wal_dir.as_ref().map(|dir| WalConfig {
            fsync: !c.no_fsync,
            checkpoint_every: c.checkpoint_every,
            // --recover counts as overwrite consent for the fresh-start
            // fallback: recovery was attempted, so whatever is left in
            // the directory is unrecoverable anyway
            overwrite: c.wal_overwrite || c.recover,
            ..WalConfig::new(dir)
        })
    };
    // the self-driving admission loop, shared by both engine shapes:
    // started right before drive(), stopped (and reported) right after
    let advisor_cfg = |c: &CommonArgs| AdvisorConfig {
        every: Duration::from_millis(c.advise_every_ms),
        budget_edges: c.view_budget,
        ..AdvisorConfig::default()
    };
    let finish_advisor = |advisor: Option<Advisor>| {
        if let Some(mut advisor) = advisor {
            advisor.stop();
            eprintln!(
                "advisor: {} tick(s), {} migration(s)",
                advisor.ticks(),
                advisor.migrations()
            );
        }
    };
    // (capacity, live): final id-slot capacity vs live element count —
    // the numbers the compaction policy bounds
    type ServeStats = ((usize, usize), (usize, usize));
    let (outcome, shard_lines, stats): (DriveOutcome, Option<String>, ServeStats) = if shards > 1 {
        let config = |c: &CommonArgs| ShardedConfig {
            compact_dead_ratio: c.compact_ratio,
            pool_threads: c.pool_threads,
            tracer: Some(Arc::clone(&tracer)),
            wal: wal(c),
            ..ShardedConfig::hash(shards)
        };
        let engine = if c.recover {
            match ShardedEngine::recover(config(&c)) {
                Ok(Some(e)) => {
                    eprintln!("recovered epoch {} from the write-ahead log", e.epoch());
                    Arc::new(e)
                }
                Ok(None) => {
                    eprintln!(
                        "warning: nothing to recover in {}; starting fresh",
                        c.wal_dir.as_deref().unwrap_or("?")
                    );
                    match ShardedEngine::try_with_config(kaskade.snapshot(), config(&c)) {
                        Ok(e) => Arc::new(e),
                        Err(e) => {
                            eprintln!("failed to open the write-ahead log: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                Err(e) => {
                    eprintln!("recovery failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            match ShardedEngine::try_with_config(kaskade.snapshot(), config(&c)) {
                Ok(e) => Arc::new(e),
                Err(e) => {
                    eprintln!("failed to open the write-ahead log: {e} (pass --recover to resume it, or --wal-overwrite to discard it)");
                    return ExitCode::FAILURE;
                }
            }
        };
        let rig = match start_observability(&c, Arc::clone(&engine) as Arc<dyn Observable>) {
            Ok(rig) => rig,
            Err(code) => return code,
        };
        let advisor = c
            .adaptive
            .then(|| Advisor::start(Arc::clone(&engine), Arc::clone(&tracer), advisor_cfg(&c)));
        let outcome = drive(&*engine, &workload, &cfg);
        finish_advisor(advisor);
        rig.finish();
        let lines = engine.metrics().per_shard_lines();
        let snap = engine.snapshot();
        let g = snap.state.graph();
        let stats = (
            (
                g.vertex_slots() + g.edge_slots(),
                g.vertex_count() + g.edge_count(),
            ),
            (g.vertex_count(), g.edge_count()),
        );
        (outcome, Some(lines), stats)
    } else {
        let config = |c: &CommonArgs| EngineConfig {
            compact_dead_ratio: c.compact_ratio,
            pool_threads: c.pool_threads,
            tracer: Some(Arc::clone(&tracer)),
            wal: wal(c),
            ..EngineConfig::default()
        };
        let engine = if c.recover {
            match Engine::recover(config(&c)) {
                Ok(Some(e)) => {
                    eprintln!("recovered epoch {} from the write-ahead log", e.epoch());
                    Arc::new(e)
                }
                Ok(None) => {
                    eprintln!(
                        "warning: nothing to recover in {}; starting fresh",
                        c.wal_dir.as_deref().unwrap_or("?")
                    );
                    match Engine::try_with_config(kaskade.snapshot(), config(&c)) {
                        Ok(e) => Arc::new(e),
                        Err(e) => {
                            eprintln!("failed to open the write-ahead log: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                Err(e) => {
                    eprintln!("recovery failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            match Engine::try_with_config(kaskade.snapshot(), config(&c)) {
                Ok(e) => Arc::new(e),
                Err(e) => {
                    eprintln!("failed to open the write-ahead log: {e} (pass --recover to resume it, or --wal-overwrite to discard it)");
                    return ExitCode::FAILURE;
                }
            }
        };
        let rig = match start_observability(&c, Arc::clone(&engine) as Arc<dyn Observable>) {
            Ok(rig) => rig,
            Err(code) => return code,
        };
        let advisor = c
            .adaptive
            .then(|| Advisor::start(Arc::clone(&engine), Arc::clone(&tracer), advisor_cfg(&c)));
        let outcome = drive(&*engine, &workload, &cfg);
        finish_advisor(advisor);
        rig.finish();
        let snap = engine.snapshot();
        let g = snap.state.graph();
        let stats = (
            (
                g.vertex_slots() + g.edge_slots(),
                g.vertex_count() + g.edge_count(),
            ),
            (g.vertex_count(), g.edge_count()),
        );
        (outcome, None, stats)
    };
    let (slots, counts) = stats;
    println!(
        "reads              {} ok / {} errors ({:.0} reads/s)",
        outcome.reads,
        outcome.read_errors,
        outcome.reads_per_sec()
    );
    println!(
        "writes submitted   {} ({} backpressured)",
        outcome.writes, outcome.writes_backpressured
    );
    println!("{}", outcome.report);
    let (capacity, live) = slots;
    println!("id slots           {capacity} capacity / {live} live");
    if let Some(lines) = shard_lines {
        print!("{lines}");
    }
    if c.stats_json {
        println!("{}", outcome_json(&outcome, &tracer, counts));
    }
    if c.trace_dump {
        eprint!("{}", tracer.render_dump());
    }

    if !outcome.final_consistent {
        eprintln!("CONSISTENCY FAILED: final snapshot diverges from a from-scratch rebuild");
        if !c.trace_dump && !tracer.dump().is_empty() {
            // dump on anomaly: whatever the flight recorder holds is
            // the best post-mortem available
            eprint!("{}", tracer.render_dump());
        }
        return ExitCode::FAILURE;
    }
    if c.expect_compaction {
        // the long-churn CI gate: the run must have crossed the
        // compaction threshold, reclaimed slots, and ended with slot
        // capacity bounded relative to the live size (small slack for
        // the batches published since the last compaction check)
        let bounded = capacity <= 2 * live + 256;
        if outcome.report.compactions_run == 0 || outcome.report.slots_reclaimed == 0 || !bounded {
            eprintln!(
                "compaction check FAILED: compactions={} reclaimed={} capacity={} live={}",
                outcome.report.compactions_run, outcome.report.slots_reclaimed, capacity, live
            );
            return ExitCode::FAILURE;
        }
        eprintln!(
            "compaction check passed ({} runs reclaimed {} slots; capacity {capacity} <= 2x live {live} + slack)",
            outcome.report.compactions_run, outcome.report.slots_reclaimed
        );
    }
    if c.expect_incremental {
        // the refresh-DAG CI gate: the writer must have refreshed views
        // (so the DAG actually ran) and never once fallen back to a
        // full re-materialization of a composed view
        let refreshed = outcome.report.views_refreshed;
        let remat = outcome.report.views_rematerialized;
        if refreshed == 0 || remat != 0 {
            eprintln!("incremental check FAILED: refreshed={refreshed} rematerialized={remat}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "incremental check passed ({refreshed} view refreshes, zero re-materializations)"
        );
    }
    if c.expect_adaptation {
        // the self-driving CI gate: the advisor must have migrated the
        // catalog at least once (created or dropped a view online), no
        // reader may have observed an inconsistent snapshot across
        // those migrations, and surviving views must have been
        // maintained incrementally — never recovered by a full
        // re-materialization
        let migrations = outcome.report.advisor_migrations;
        let remat = outcome.report.views_rematerialized;
        if migrations == 0 || outcome.consistency_violations != 0 || remat != 0 {
            eprintln!(
                "adaptation check FAILED: migrations={migrations} violations={} rematerialized={remat}",
                outcome.consistency_violations
            );
            return ExitCode::FAILURE;
        }
        eprintln!(
            "adaptation check passed ({migrations} advisor migration(s) [{} created / {} dropped], \
             zero violations, zero re-materializations)",
            outcome.report.views_created, outcome.report.views_dropped
        );
    }
    if c.smoke {
        let healthy = outcome.reads > 0
            && outcome.read_errors == 0
            && outcome.consistency_violations == 0
            && outcome.report.epoch > 0
            && outcome.report.plan_cache_hit_rate() > 0.0;
        if !healthy {
            eprintln!(
                "smoke check FAILED: reads={} errors={} violations={} epoch={} hit_rate={:.2}",
                outcome.reads,
                outcome.read_errors,
                outcome.consistency_violations,
                outcome.report.epoch,
                outcome.report.plan_cache_hit_rate()
            );
            return ExitCode::FAILURE;
        }
        eprintln!("smoke check passed (final views and stats verified against scratch rebuild)");
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        return usage();
    };
    let Some(ds_name) = args.next() else {
        return usage();
    };
    let Some(dataset) = Dataset::ALL.into_iter().find(|d| d.short_name() == ds_name) else {
        eprintln!("unknown dataset `{ds_name}`");
        return usage();
    };
    let Some(common) = parse_common(args) else {
        return usage();
    };
    // zero readers or zero shards is neither an error the engine can
    // recover from nor a sensible degenerate mode: refuse cleanly
    // instead of panicking or silently clamping
    if common.threads == Some(0) {
        eprintln!("--threads must be at least 1");
        return ExitCode::from(2);
    }
    if common.shards == 0 {
        eprintln!("--shards must be at least 1");
        return ExitCode::from(2);
    }
    if common.recover && common.wal_dir.is_none() {
        eprintln!("--recover requires --wal-dir (there is no log to recover from)");
        return ExitCode::from(2);
    }
    match command.as_str() {
        "query" => cmd_query(dataset, common),
        "serve" => cmd_serve(dataset, common),
        other => {
            eprintln!("unknown command `{other}`");
            usage()
        }
    }
}
