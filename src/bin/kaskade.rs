//! `kaskade` — a small CLI over the framework: load a generated dataset,
//! optionally let the workload analyzer materialize views, and run ad-hoc
//! hybrid SQL+Cypher queries with plan information.
//!
//! ```text
//! kaskade <dataset> [--views] [--scale N] [--seed N] <query | @listing1>
//!
//!   dataset:  prov | dblp | roadnet-usa | soc-livejournal
//!   --views   run view selection for the query before executing
//!   @listing1 / @listing4 expand to the paper's queries
//! ```
//!
//! Example:
//!
//! ```sh
//! cargo run --release --bin kaskade -- prov --views @listing1
//! cargo run --release --bin kaskade -- dblp \
//!   "SELECT COUNT(*) FROM (MATCH (a:Author)-[:AUTHORED]->(p:Publication) RETURN a, p)"
//! ```

use std::process::ExitCode;
use std::time::Instant;

use kaskade::core::{Kaskade, SelectionConfig};
use kaskade::datasets::Dataset;
use kaskade::query::{listings, parse};

fn usage() -> ExitCode {
    eprintln!(
        "usage: kaskade <prov|dblp|roadnet-usa|soc-livejournal> [--views] [--scale N] [--seed N] <query|@listing1|@listing4>"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(ds_name) = args.next() else {
        return usage();
    };
    let Some(dataset) = Dataset::ALL.into_iter().find(|d| d.short_name() == ds_name) else {
        eprintln!("unknown dataset `{ds_name}`");
        return usage();
    };

    let mut with_views = false;
    let mut scale = 1usize;
    let mut seed = 0x5EEDu64;
    let mut query_src: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--views" => with_views = true,
            "--scale" => {
                scale = args.next().and_then(|v| v.parse().ok()).unwrap_or(1);
            }
            "--seed" => {
                seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(seed);
            }
            "@listing1" => query_src = Some(listings::LISTING_1.to_string()),
            "@listing4" => query_src = Some(listings::LISTING_4.to_string()),
            other => query_src = Some(other.to_string()),
        }
    }
    let Some(query_src) = query_src else {
        return usage();
    };

    let start = Instant::now();
    let graph = dataset.generate(scale, seed);
    eprintln!(
        "loaded {} (scale {scale}, seed {seed:#x}): {} vertices, {} edges in {:.2?}",
        dataset.short_name(),
        graph.vertex_count(),
        graph.edge_count(),
        start.elapsed()
    );

    let query = match parse(&query_src) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("query error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut kaskade = Kaskade::new(graph, dataset.schema());
    if with_views {
        let start = Instant::now();
        let report = kaskade
            .select_and_materialize(std::slice::from_ref(&query), &SelectionConfig::default());
        eprintln!(
            "view selection: {} candidate(s) scored, materialized {:?} in {:.2?}",
            report.scored.len(),
            report.materialized,
            start.elapsed()
        );
    }

    let plan = match kaskade.plan(&query) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("planning error: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "plan: {} (estimated cost {:.0})",
        plan.view_id.as_deref().unwrap_or("raw graph"),
        plan.estimated_cost
    );

    let start = Instant::now();
    let table = match kaskade.execute(&query) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("execution error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let elapsed = start.elapsed();

    // print up to 25 rows
    println!("{}", table.columns.join("\t"));
    for row in table.rows.iter().take(25) {
        let cells: Vec<String> = row.iter().map(|d| d.to_string()).collect();
        println!("{}", cells.join("\t"));
    }
    if table.len() > 25 {
        println!("... ({} rows total)", table.len());
    }
    eprintln!("{} row(s) in {:.2?}", table.len(), elapsed);
    ExitCode::SUCCESS
}
