//! # kaskade — umbrella crate
//!
//! Re-exports the full public API of the Kaskade reproduction. See the
//! README for an overview and `examples/` for runnable walkthroughs.

pub use kaskade_algos as algos;
pub use kaskade_core as core;
pub use kaskade_datasets as datasets;
pub use kaskade_graph as graph;
pub use kaskade_prolog as prolog;
pub use kaskade_query as query;
pub use kaskade_service as service;
