//! Durability suite: the write-ahead log, checkpoint/recovery, and the
//! stable external-id layer.
//!
//! The centerpiece is a differential property: an engine that is
//! killed and recovered from its WAL mid-churn — any number of times,
//! across forced checkpoints and compactions — must end **byte
//! identical** (graph, schema, statistics, view catalog, epoch) to an
//! engine that served the same delta sequence without ever restarting.
//! The property runs against both the single engine and a 4-shard
//! router (whose recovery re-partitions the recovered global state).
//!
//! The suite also pins the staleness fix: deltas addressed purely by
//! external ids survive arbitrarily many slot compactions — far past
//! the bounded remap history — while slot-addressed deltas from a
//! pre-history epoch fail fast with the typed `StaleEpoch` error and
//! a `deltas_stale_rejected` metric tick.

use std::path::PathBuf;

use proptest::prelude::*;

use kaskade::core::{ConnectorDef, GraphDelta, Kaskade, Snapshot, VRef, ViewDef};
use kaskade::datasets::{generate_provenance, ProvenanceConfig};
use kaskade::graph::{Enc, Schema, Value};
use kaskade::query::{listings::LISTING_1, parse};
use kaskade::service::{
    snapshot_is_consistent, Engine, EngineConfig, ShardedConfig, ShardedEngine, SubmitError,
    SubmitOpts, WalConfig,
};

fn tiny_instance(seed: u64) -> Kaskade {
    let g = generate_provenance(&ProvenanceConfig::tiny(seed).core_only());
    let mut k = Kaskade::new(g, Schema::provenance());
    k.materialize_view(ViewDef::Connector(ConnectorDef::k_hop("Job", "Job", 2)));
    k
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kaskade-dur-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The byte-identity witness: the full persisted form of a read state.
fn encoded(state: &Snapshot) -> Vec<u8> {
    let mut enc = Enc::new();
    state.encode(&mut enc);
    enc.into_bytes()
}

/// Deterministic churn over **external ids only** — adds Job/File
/// pairs, cross-links live vertices, retracts whole vertices — so
/// every delta is compaction-immune by construction and the same
/// script can be fed to any number of engines.
struct ExtChurn {
    rng: u64,
    next_ext: u64,
    jobs: Vec<u64>,
    files: Vec<u64>,
}

impl ExtChurn {
    fn new(seed: u64) -> Self {
        ExtChurn {
            rng: seed | 1,
            next_ext: 1,
            jobs: Vec::new(),
            files: Vec::new(),
        }
    }

    fn next(&mut self) -> u64 {
        self.rng = self
            .rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.rng >> 11
    }

    fn fresh(&mut self) -> u64 {
        let ext = self.next_ext;
        self.next_ext += 1;
        ext
    }

    fn delta(&mut self, step: u64) -> GraphDelta {
        let mut d = GraphDelta::new();
        match self.next() % 4 {
            // a new Job writing a new File, both externally named
            0 | 1 => {
                let (je, fe) = (self.fresh(), self.fresh());
                let j = d.add_vertex_ext("Job", je, vec![("step".into(), Value::Int(step as i64))]);
                let f = d.add_vertex_ext("File", fe, vec![]);
                d.add_edge(
                    j,
                    f,
                    "WRITES_TO",
                    vec![("ts".into(), Value::Int(step as i64))],
                );
                self.jobs.push(je);
                self.files.push(fe);
            }
            // cross-link two already-live vertices purely by name
            2 if !self.jobs.is_empty() && !self.files.is_empty() => {
                let (fi, ji) = (self.next() as usize, self.next() as usize);
                let f = self.files[fi % self.files.len()];
                let j = self.jobs[ji % self.jobs.len()];
                d.add_edge(
                    VRef::External(f),
                    VRef::External(j),
                    "IS_READ_BY",
                    vec![("ts".into(), Value::Int(step as i64))],
                );
            }
            // retract a vertex by name (cascades its edges); keep a
            // floor so the churn never drains itself
            3 if self.jobs.len() > 4 => {
                let i = self.next() as usize % self.jobs.len();
                d.del_vertex_ext(self.jobs.swap_remove(i));
            }
            _ => {
                let je = self.fresh();
                d.add_vertex_ext("Job", je, vec![("step".into(), Value::Int(step as i64))]);
                self.jobs.push(je);
            }
        }
        d
    }
}

/// A durable backend under test: single engine or sharded router,
/// restartable in place from its WAL directory.
enum Durable {
    Single(Option<Engine>),
    Sharded(Option<ShardedEngine>),
}

impl Durable {
    fn fresh(state: Snapshot, shards: usize, wal: WalConfig) -> Self {
        if shards > 1 {
            Durable::Sharded(Some(ShardedEngine::with_config(
                state,
                ShardedConfig {
                    wal: Some(wal),
                    scatter_min_vertices: 0,
                    ..ShardedConfig::hash(shards)
                },
            )))
        } else {
            Durable::Single(Some(Engine::with_config(
                state,
                EngineConfig {
                    wal: Some(wal),
                    ..EngineConfig::default()
                },
            )))
        }
    }

    fn submit(&self, delta: GraphDelta, opts: SubmitOpts) -> Result<(), SubmitError> {
        match self {
            Durable::Single(e) => e.as_ref().unwrap().submit(delta, opts),
            Durable::Sharded(e) => e.as_ref().unwrap().submit(delta, opts),
        }
    }

    fn flush(&self) -> u64 {
        match self {
            Durable::Single(e) => e.as_ref().unwrap().flush(),
            Durable::Sharded(e) => e.as_ref().unwrap().flush(),
        }
    }

    fn state(&self) -> Snapshot {
        match self {
            Durable::Single(e) => e.as_ref().unwrap().snapshot().state.clone(),
            Durable::Sharded(e) => e.as_ref().unwrap().snapshot().state.clone(),
        }
    }

    fn epoch(&self) -> u64 {
        match self {
            Durable::Single(e) => e.as_ref().unwrap().epoch(),
            Durable::Sharded(e) => e.as_ref().unwrap().epoch(),
        }
    }

    fn stale_rejected(&self) -> u64 {
        match self {
            Durable::Single(e) => e.as_ref().unwrap().metrics().deltas_stale_rejected,
            Durable::Sharded(e) => e.as_ref().unwrap().metrics().global.deltas_stale_rejected,
        }
    }

    /// Kills the running engine (drop joins its writer) and brings a
    /// new one up from nothing but the WAL directory.
    fn restart(&mut self, shards: usize, wal: WalConfig) {
        match self {
            Durable::Single(e) => {
                drop(e.take());
                *e = Some(
                    Engine::recover(EngineConfig {
                        wal: Some(wal),
                        ..EngineConfig::default()
                    })
                    .expect("recovery io")
                    .expect("a served log is never empty"),
                );
            }
            Durable::Sharded(e) => {
                drop(e.take());
                *e = Some(
                    ShardedEngine::recover(ShardedConfig {
                        wal: Some(wal),
                        scatter_min_vertices: 0,
                        ..ShardedConfig::hash(shards)
                    })
                    .expect("recovery io")
                    .expect("a served log is never empty"),
                );
            }
        }
    }
}

/// Feeds the identical external-id churn script to a never-restarted
/// reference engine and a WAL-backed engine that restarts at every
/// position in `restarts`, checkpointing aggressively along the way;
/// after every restart and at the end the two must agree byte for
/// byte.
fn run_differential(seed: u64, steps: u64, restarts: &[u64], shards: usize) {
    let k = tiny_instance(seed);
    let reference = Engine::from_kaskade(&k);
    let dir = tmpdir(&format!("diff{shards}-{seed:x}"));
    let wal = || WalConfig {
        fsync: false,
        checkpoint_every: 3,
        ..WalConfig::new(&dir)
    };
    let mut durable = Durable::fresh(k.snapshot(), shards, wal());

    let mut script = ExtChurn::new(seed ^ 0xC0FFEE);
    for step in 0..steps {
        let delta = script.delta(step);
        // external ids make the delta epoch-free: based_on 0 is
        // always acceptable, however many compactions have run
        reference
            .submit(delta.clone(), SubmitOpts::based_on(0))
            .expect("reference submit");
        durable
            .submit(delta, SubmitOpts::based_on(0))
            .expect("durable submit");
        let re = reference.flush();
        let de = durable.flush();
        assert_eq!(re, de, "epoch drift at step {step}");
        if restarts.contains(&step) {
            durable.restart(shards, wal());
            assert_eq!(
                durable.epoch(),
                re,
                "recovery must resume at the last published epoch (step {step})"
            );
            assert_eq!(
                encoded(&durable.state()),
                encoded(&reference.snapshot().state),
                "recovered state diverges after restart at step {step}"
            );
        }
    }

    let recovered = durable.state();
    let live = reference.snapshot().state.clone();
    assert_eq!(
        encoded(&recovered),
        encoded(&live),
        "final state diverges (shards={shards})"
    );
    assert!(snapshot_is_consistent(&recovered));
    let q = parse(LISTING_1).unwrap();
    let a = recovered.execute(&q).unwrap();
    let b = live.execute(&q).unwrap();
    assert_eq!(format!("{:?}", a.rows), format!("{:?}", b.rows));
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// THE durability acceptance property: recovery is byte-identical
    /// to never having crashed — single engine and 4-shard router,
    /// with forced checkpoints and mid-sequence restarts.
    #[test]
    fn recovery_is_byte_identical_to_uninterrupted_serving(
        seed in any::<u64>(),
        restarts in proptest::collection::vec(0u64..40, 1..4),
    ) {
        run_differential(seed, 40, &restarts, 1);
        run_differential(seed, 40, &restarts, 4);
    }
}

/// Recovery seeds the staleness watermark: compactions that published
/// before a crash are folded into the checkpoint (or replayed) and
/// their remaps die with the old process, so a slot-addressed delta
/// based on **any** pre-restart epoch must fail fast with
/// `StaleEpoch` — rebasing it through the recovered writer's empty
/// remap history would silently alias renumbered ids. Deltas based on
/// the recovered epoch, and external-id deltas from any epoch, still
/// apply.
#[test]
fn recovery_rejects_slot_deltas_from_before_the_restart() {
    for shards in [1usize, 4] {
        let k = tiny_instance(23);
        let dir = tmpdir(&format!("stale{shards}"));
        let wal = || WalConfig {
            fsync: false,
            checkpoint_every: 2,
            ..WalConfig::new(&dir)
        };
        let mut durable = Durable::fresh(k.snapshot(), shards, wal());
        let mut script = ExtChurn::new(23);
        for step in 0..6 {
            durable
                .submit(script.delta(step), SubmitOpts::based_on(0))
                .expect("churn submit");
            durable.flush();
        }
        let pre = durable.epoch();
        assert!(pre >= 2, "the churn must publish a few epochs");
        durable.restart(shards, wal());
        assert_eq!(durable.epoch(), pre);

        // slot ids resolved against a pre-restart snapshot: typed
        // rejection, counted in the staleness metric
        let victim = durable
            .state()
            .graph()
            .vertices_of_type("Job")
            .next()
            .unwrap();
        let mut stale = GraphDelta::new();
        stale.del_vertex(victim);
        match durable.submit(stale, SubmitOpts::based_on(pre - 1)) {
            Err(SubmitError::StaleEpoch { oldest_supported }) => {
                assert_eq!(
                    oldest_supported, pre,
                    "the watermark is the recovered epoch"
                );
            }
            other => panic!("expected StaleEpoch after recovery (shards={shards}), got {other:?}"),
        }
        assert_eq!(durable.stale_rejected(), 1);

        // the same retraction resolved against the recovered snapshot
        // applies — recovery must not over-reject current slot ids
        let before = durable.state().graph().vertex_count();
        let mut current = GraphDelta::new();
        current.del_vertex(victim);
        durable
            .submit(current, SubmitOpts::based_on(pre))
            .expect("current-epoch slot ids are not stale");
        durable.flush();
        assert_eq!(durable.state().graph().vertex_count(), before - 1);

        // and external-id deltas stay epoch-free across the restart
        let mut ext = GraphDelta::new();
        ext.add_vertex_ext("Job", 999_999, vec![]);
        durable
            .submit(ext, SubmitOpts::based_on(0))
            .expect("external-id deltas never go stale");
        durable.flush();
        assert!(snapshot_is_consistent(&durable.state()));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A fresh (non-recovery) start refuses a WAL directory that already
/// holds durable state: opening fresh would checkpoint-and-truncate
/// right over it, so a forgotten `--recover` must fail loudly, not
/// silently destroy the previous run's data. Recovery and the
/// explicit `overwrite` flag are the two sanctioned ways in.
#[test]
fn fresh_start_refuses_a_wal_dir_with_durable_state() {
    let k = tiny_instance(7);
    let dir = tmpdir("noclobber");
    let wal = || WalConfig {
        fsync: false,
        ..WalConfig::new(&dir)
    };
    let engine = Engine::with_config(
        k.snapshot(),
        EngineConfig {
            wal: Some(wal()),
            ..EngineConfig::default()
        },
    );
    let mut d = GraphDelta::new();
    d.add_vertex_ext("Job", 1, vec![]);
    engine.submit(d, SubmitOpts::based_on(0)).unwrap();
    engine.flush();
    drop(engine);

    let err = Engine::try_with_config(
        k.snapshot(),
        EngineConfig {
            wal: Some(wal()),
            ..EngineConfig::default()
        },
    )
    .expect_err("a fresh start over durable state must refuse");
    assert_eq!(err.kind(), std::io::ErrorKind::AlreadyExists);
    let err = ShardedEngine::try_with_config(
        k.snapshot(),
        ShardedConfig {
            wal: Some(wal()),
            ..ShardedConfig::hash(4)
        },
    )
    .expect_err("the sharded fresh start must refuse too");
    assert_eq!(err.kind(), std::io::ErrorKind::AlreadyExists);

    // the refusal lost nothing: recovery still finds the logged epoch
    let recovered = Engine::recover(EngineConfig {
        wal: Some(wal()),
        ..EngineConfig::default()
    })
    .expect("recovery io")
    .expect("durable state is present");
    assert!(recovered.epoch() >= 1);
    drop(recovered);

    // explicit overwrite is informed consent to discard it
    let fresh = Engine::try_with_config(
        k.snapshot(),
        EngineConfig {
            wal: Some(WalConfig {
                overwrite: true,
                ..wal()
            }),
            ..EngineConfig::default()
        },
    )
    .expect("overwrite opens fresh");
    assert_eq!(fresh.epoch(), 0);
    drop(fresh);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The staleness fix, end to end: external-id deltas keep applying
/// long after the remap history (8 entries) has wrapped, while a
/// slot-addressed delta based on a pre-history epoch is rejected with
/// the typed error and counted in `deltas_stale_rejected`.
#[test]
fn external_ids_outlive_the_remap_history() {
    let k = tiny_instance(11);
    let engine = Engine::with_config(
        k.snapshot(),
        EngineConfig {
            // compact after virtually any retraction so the remap
            // history wraps quickly
            compact_dead_ratio: 0.0001,
            ..EngineConfig::default()
        },
    );

    let mut ext = 1u64;
    let mut compactions = 0u64;
    let mut rounds = 0u32;
    while compactions <= 12 {
        rounds += 1;
        assert!(rounds < 200, "compaction never triggered");
        // add an externally-named pair, then retract the previous
        // round's job — steady churn, all addressed by external ids,
        // always claiming to be based on epoch 0
        let mut d = GraphDelta::new();
        let j = d.add_vertex_ext("Job", ext, vec![]);
        let f = d.add_vertex_ext("File", ext + 1, vec![]);
        d.add_edge(j, f, "WRITES_TO", vec![]);
        if ext > 2 {
            d.del_vertex_ext(ext - 2);
        }
        ext += 2;
        engine
            .submit(d, SubmitOpts::based_on(0))
            .expect("external-id deltas never go stale");
        engine.flush();
        compactions = engine.metrics().compactions_run;
    }
    assert!(
        compactions > 8,
        "the test must outrun MAX_REMAP_HISTORY, saw {compactions}"
    );
    assert_eq!(engine.metrics().deltas_stale_rejected, 0);

    // a slot-addressed delta from the stone age is typed-rejected
    let snap = engine.snapshot();
    let victim = snap.state.graph().vertices_of_type("Job").next().unwrap();
    let mut stale = GraphDelta::new();
    stale.del_vertex(victim);
    match engine.submit(stale, SubmitOpts::based_on(0)) {
        Err(SubmitError::StaleEpoch { oldest_supported }) => {
            assert!(oldest_supported > 0, "history must have dropped epochs");
        }
        other => panic!("expected StaleEpoch, got {other:?}"),
    }
    assert_eq!(engine.metrics().deltas_stale_rejected, 1);

    // and the equivalent external-id retraction still sails through
    // (the last round's job, `ext - 2`, is still live)
    let mut fine = GraphDelta::new();
    fine.del_vertex_ext(ext - 2);
    engine
        .submit(fine, SubmitOpts::based_on(0))
        .expect("the same retraction by external id is epoch-free");
    engine.flush();
}
