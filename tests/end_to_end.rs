//! Cross-crate integration tests: the full Kaskade pipeline
//! (generate → mine constraints → enumerate → select → materialize →
//! rewrite → execute) on every dataset.

use kaskade::core::{Kaskade, SelectionConfig, ViewDef};
use kaskade::datasets::Dataset;
use kaskade::graph::GraphStats;
use kaskade::query::{execute, listings, parse, Datum, Table};

fn normalized(t: &Table) -> Vec<String> {
    let mut rows: Vec<String> = t.rows.iter().map(|r| format!("{r:?}")).collect();
    rows.sort();
    rows
}

#[test]
fn full_pipeline_on_prov() {
    let g = Dataset::Prov.generate(1, 101);
    let schema = Dataset::Prov.schema();
    let mut kaskade = Kaskade::new(g, schema);
    let query = parse(listings::LISTING_1).unwrap();

    // enumeration sees the §IV-B candidates
    let e = kaskade.enumerate(&query).unwrap();
    assert!(e.candidates.len() >= 5);

    // selection materializes the summarizer and/or connector
    let report =
        kaskade.select_and_materialize(std::slice::from_ref(&query), &SelectionConfig::default());
    assert!(
        report
            .materialized
            .iter()
            .any(|id| id == "connector:JOB_TO_JOB_2_HOP"),
        "materialized: {:?}",
        report.materialized
    );

    // the planner routes the query to the connector and results agree
    let plan = kaskade.plan(&query).unwrap();
    let routed = plan
        .view_id
        .and_then(|id| kaskade.catalog().get_by_id(id))
        .map(|v| v.def.id());
    assert_eq!(routed.as_deref(), Some("connector:JOB_TO_JOB_2_HOP"));
}

#[test]
fn raw_vs_view_equivalence_prov() {
    let g = Dataset::Prov.generate(1, 102);
    let schema = Dataset::Prov.schema();
    let query = parse(listings::LISTING_1).unwrap();
    let raw_result = execute(&g, &query).unwrap();

    let mut kaskade = Kaskade::new(g, schema);
    kaskade.materialize_view(ViewDef::Connector(kaskade::core::ConnectorDef::k_hop(
        "Job", "Job", 2,
    )));
    let view_result = kaskade.execute(&query).unwrap();
    assert_eq!(normalized(&raw_result), normalized(&view_result));
    assert!(!raw_result.is_empty());
}

#[test]
fn listing_1_equals_listing_4_on_materialized_connector() {
    // the two paper listings, executed literally: Listing 1 on the core
    // graph, Listing 4 on the materialized connector view
    let g = Dataset::Prov.generate(1, 103);
    let q1 = parse(listings::LISTING_1).unwrap();
    let q4 = parse(listings::LISTING_4).unwrap();
    let view = kaskade::core::materialize(
        &g,
        &kaskade::core::ViewDef::Connector(kaskade::core::ConnectorDef::k_hop("Job", "Job", 2)),
    );
    let r1 = execute(&g, &q1).unwrap();
    let r4 = execute(&view, &q4).unwrap();
    assert_eq!(normalized(&r1), normalized(&r4));
}

#[test]
fn coauthor_equivalence_dblp() {
    let g = Dataset::Dblp.generate(1, 104);
    // co-authors within 2 collaboration steps of any author
    let raw_q = parse(
        "SELECT COUNT(*) FROM (
           MATCH (a:Author)-[:AUTHORED]->(p:Publication)
                 (p:Publication)-[:IS_AUTHORED_BY]->(b:Author)
           RETURN a AS A, b AS B)",
    )
    .unwrap();
    let raw = execute(&g, &raw_q).unwrap();
    let view = kaskade::core::materialize(
        &g,
        &kaskade::core::ViewDef::Connector(kaskade::core::ConnectorDef::k_hop(
            "Author", "Author", 2,
        )),
    );
    let view_q = parse(
        "SELECT COUNT(*) FROM (
           MATCH (a:Author)-[:AUTHOR_TO_AUTHOR_2_HOP*1..1]->(b:Author)
           RETURN a AS A, b AS B)",
    )
    .unwrap();
    let viewed = execute(&view, &view_q).unwrap();
    // raw pairs include a->p->a self round-trips; the connector excludes
    // self-pairs by definition, so raw = view + #authors-with-a-pub
    let raw_count = raw.scalar().unwrap().as_int().unwrap();
    let view_count = viewed.scalar().unwrap().as_int().unwrap();
    let authors_with_pub = g
        .vertices_of_type("Author")
        .filter(|&a| g.out_degree(a) > 0)
        .count() as i64;
    assert_eq!(raw_count, view_count + authors_with_pub);
}

#[test]
fn selection_respects_budget_on_all_datasets() {
    for d in Dataset::ALL {
        let g = d.generate(1, 105);
        let m = g.edge_count() as u64;
        let schema = d.core_schema();
        let mut kaskade = Kaskade::new(g, schema);
        let anchor = d.anchor_type();
        let q = parse(&format!(
            "SELECT COUNT(*) FROM (MATCH (a:{anchor})-[e*1..4]->(b:{anchor}) RETURN a, b)"
        ))
        .unwrap();
        let report = kaskade.select_and_materialize(
            std::slice::from_ref(&q),
            &SelectionConfig {
                budget_edges: 2 * m,
                alpha: 95,
            },
        );
        // whatever was selected must fit the budget when materialized
        // within the α=95 margin of error: check actual total is sane
        let total = kaskade.catalog().total_edges() as u64;
        assert!(
            total <= 20 * m,
            "{}: materialized {} edges vs budget {}",
            d.short_name(),
            total,
            2 * m
        );
        // the power-law dataset must not materialize its oversized view
        if d == Dataset::SocLivejournal {
            assert!(
                report.materialized.is_empty(),
                "soc-livejournal should reject connectors, got {:?}",
                report.materialized
            );
        }
    }
}

#[test]
fn query_engine_and_algos_agree_on_reachability() {
    // MATCH (a)-[*1..3]->(b) pairs == k_hop_neighborhood within 3 hops
    let g = Dataset::RoadnetUsa.generate(1, 106);
    let q = parse("MATCH (a:Intersection)-[e*1..3]->(b:Intersection) RETURN a, b").unwrap();
    let table = execute(&g, &q).unwrap();
    let mut from_query = 0usize;
    let mut anchors = std::collections::HashSet::new();
    for row in &table.rows {
        let (Datum::Vertex(a), Datum::Vertex(_)) = (&row[0], &row[1]) else {
            panic!("expected vertices")
        };
        anchors.insert(*a);
        from_query += 1;
    }
    let mut from_algos = 0usize;
    for v in g.vertices() {
        from_algos +=
            kaskade::algos::k_hop_neighborhood(&g, v, 3, kaskade::algos::Direction::Forward).len();
    }
    assert_eq!(from_query, from_algos);
    assert!(!anchors.is_empty());
}

#[test]
fn stats_are_consistent_across_crates() {
    let g = Dataset::Dblp.generate(1, 107);
    let stats = GraphStats::compute(&g);
    assert_eq!(stats.vertex_count, g.vertex_count());
    assert_eq!(stats.edge_count, g.edge_count());
    let sum: usize = stats.types().map(|(_, s)| s.cardinality).sum();
    assert_eq!(sum, g.vertex_count());
}

#[test]
fn prolog_walk_agrees_with_rust_dp_on_all_schemas() {
    // the bounded-walk mining rule and Schema::has_k_hop_walk must agree
    for d in Dataset::ALL {
        let schema = d.schema();
        let mut db = kaskade::core::base_database();
        kaskade::core::assert_schema_facts(&mut db, &schema);
        let types: Vec<String> = schema.vertex_types().map(str::to_string).collect();
        for src in &types {
            for dst in &types {
                for k in 1..=4usize {
                    let prolog = db
                        .has_solution(&format!("schemaKHopWalk('{src}', '{dst}', {k})"))
                        .unwrap();
                    let rust = schema.has_k_hop_walk(src, dst, k);
                    assert_eq!(prolog, rust, "{}: {src}->{dst} k={k}", d.short_name());
                }
            }
        }
    }
}
