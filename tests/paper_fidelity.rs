//! Paper-fidelity tests: the exact listings, facts and unifications the
//! paper prints, reproduced end-to-end.
//!
//! §IV-A1 gives the exact fact set mined from Listing 1; §IV-B gives the
//! exact `kHopConnector` instantiations; Fig. 3 gives the exact
//! connector edges of the toy lineage graph; Listing 4 is the exact
//! rewriting. Each is asserted literally here.

use kaskade::core::{
    assert_query_facts, assert_schema_facts, base_database, enumerate_views, find_chain,
    materialize, rewrite_over_connector, Candidate, ConnectorDef, ViewDef,
};
use kaskade::graph::{GraphBuilder, Schema};
use kaskade::query::{execute, listings, parse, EdgePattern};

/// §IV-A1: every fact the paper lists for Listing 1, and nothing
/// contradictory.
#[test]
fn section_iv_a1_fact_set_is_exact() {
    let q = parse(listings::LISTING_1).unwrap();
    let mut db = base_database();
    assert_schema_facts(&mut db, &Schema::provenance());
    assert_query_facts(&mut db, &q);

    // the paper's exact fact list
    let expected_true = [
        "queryVertex(q_f1)",
        "queryVertex(q_f2)",
        "queryVertex(q_j1)",
        "queryVertex(q_j2)",
        "queryVertexType(q_f1, 'File')",
        "queryVertexType(q_f2, 'File')",
        "queryVertexType(q_j1, 'Job')",
        "queryVertexType(q_j2, 'Job')",
        "queryEdge(q_j1, q_f1)",
        "queryEdge(q_f2, q_j2)",
        "queryEdgeType(q_j1, q_f1, 'WRITES_TO')",
        "queryEdgeType(q_f2, q_j2, 'IS_READ_BY')",
        "queryVariableLengthPath(q_f1, q_f2, 0, 8)",
        "schemaVertex('Job')",
        "schemaVertex('File')",
        "schemaEdge('Job', 'File', 'WRITES_TO')",
        "schemaEdge('File', 'Job', 'IS_READ_BY')",
    ];
    for fact in expected_true {
        assert!(db.has_solution(fact).unwrap(), "missing fact: {fact}");
    }
    let expected_false = [
        "queryEdge(q_f1, q_f2)",         // var-length, not an edge
        "queryEdge(q_f1, q_j1)",         // wrong direction
        "schemaEdge('File', 'File', T)", // no file-file edges
        "schemaEdge('Job', 'Job', T)",   // no job-job edges
        "queryVariableLengthPath(q_j1, q_j2, L, U)",
    ];
    for fact in expected_false {
        assert!(!db.has_solution(fact).unwrap(), "unexpected fact: {fact}");
    }
}

/// §IV-B: "the following are valid instantiations of the
/// kHopConnector(X,Y,XTYPE,YTYPE,K) view template for query vertices
/// q_j1 and q_j2 ... K=2, K=4, K=6, K=8, K=10".
#[test]
fn section_iv_b_instantiations_are_exact() {
    let q = parse(listings::LISTING_1).unwrap();
    let e = enumerate_views(&q, &Schema::provenance()).unwrap();
    let mut found: Vec<usize> = e
        .candidates
        .iter()
        .filter_map(|c| match c {
            Candidate::KHopConnector {
                x,
                y,
                src_type,
                dst_type,
                k,
            } if x == "q_j1" && y == "q_j2" && src_type == "Job" && dst_type == "Job" => Some(*k),
            _ => None,
        })
        .collect();
    found.sort_unstable();
    assert_eq!(found, vec![2, 4, 6, 8, 10]);
    // and no odd-k job-to-job connectors slipped through
    assert!(!e.candidates.iter().any(|c| matches!(
        c,
        Candidate::KHopConnector { src_type, dst_type, k, .. }
            if src_type == "Job" && dst_type == "Job" && k % 2 == 1
    )));
}

/// Fig. 3: the exact connector edges of panels (c) and (d).
#[test]
fn figure_3_connector_edges_are_exact() {
    // panel (a): j1 -w-> f1 -r-> j2, j1 -w-> f2 -r-> j3, j2 -w-> f3,
    // j3 -w-> f4
    let mut b = GraphBuilder::new();
    let names = ["j1", "f1", "j2", "f2", "j3", "f3", "f4"];
    let types = ["Job", "File", "Job", "File", "Job", "File", "File"];
    let vs: Vec<_> = names
        .iter()
        .zip(types)
        .map(|(n, t)| {
            let v = b.add_vertex(t);
            b.set_vertex_prop(v, "name", kaskade::graph::Value::Str(n.to_string()));
            v
        })
        .collect();
    for (s, d, t) in [
        (0, 1, "WRITES_TO"),
        (1, 2, "IS_READ_BY"),
        (0, 3, "WRITES_TO"),
        (3, 4, "IS_READ_BY"),
        (2, 5, "WRITES_TO"),
        (4, 6, "WRITES_TO"),
    ] {
        b.add_edge(vs[s], vs[d], t);
    }
    let g = b.finish();
    let edges_of = |view: &kaskade::graph::Graph| -> Vec<(String, String)> {
        let name = |v| {
            view.vertex_prop(v, "name")
                .map(|p| p.to_string())
                .unwrap_or_default()
        };
        let mut out: Vec<_> = view
            .edges()
            .map(|e| (name(view.edge_src(e)), name(view.edge_dst(e))))
            .collect();
        out.sort();
        out
    };
    // panel (c): job-to-job = {j1->j2, j1->j3}
    let c_view = materialize(
        &g,
        &ViewDef::Connector(ConnectorDef::k_hop("Job", "Job", 2)),
    );
    assert_eq!(
        edges_of(&c_view),
        vec![
            ("j1".to_string(), "j2".to_string()),
            ("j1".to_string(), "j3".to_string())
        ]
    );
    // panel (d): file-to-file = {f1->f3, f2->f4}
    let d_view = materialize(
        &g,
        &ViewDef::Connector(ConnectorDef::k_hop("File", "File", 2)),
    );
    assert_eq!(
        edges_of(&d_view),
        vec![
            ("f1".to_string(), "f3".to_string()),
            ("f2".to_string(), "f4".to_string())
        ]
    );
}

/// Listing 1 → Listing 4: the rewriter produces the paper's rewritten
/// query shape, and both listings return identical tables when run on
/// their respective graphs.
#[test]
fn listing_4_is_the_rewriting_of_listing_1() {
    let q1 = parse(listings::LISTING_1).unwrap();
    let def = ConnectorDef::k_hop("Job", "Job", 2);
    let rewritten =
        rewrite_over_connector(&q1, "q_j1", "q_j2", &def, &Schema::provenance()).unwrap();

    // same shape as Listing 4 (with the corrected *1..5 window)
    let q4 = parse(listings::LISTING_4).unwrap();
    let rp = rewritten.pattern().unwrap();
    let p4 = q4.pattern().unwrap();
    assert_eq!(rp.edges.len(), 1);
    assert_eq!(
        rp.edges[0],
        EdgePattern::var_length("q_j1", "q_j2", Some("JOB_TO_JOB_2_HOP"), 1, 5)
    );
    assert_eq!(p4.edges[0].hops, rp.edges[0].hops);
    assert_eq!(p4.edges[0].etype, rp.edges[0].etype);

    // equivalent results on a generated lineage graph
    let g = kaskade::datasets::Dataset::Prov.generate(1, 777);
    let view = materialize(&g, &ViewDef::Connector(def.clone()));
    let r1 = execute(&g, &q1).unwrap();
    let r4 = execute(&view, &q4).unwrap();
    let norm = |t: &kaskade::query::Table| {
        let mut rows: Vec<String> = t.rows.iter().map(|r| format!("{r:?}")).collect();
        rows.sort();
        rows
    };
    assert_eq!(norm(&r1), norm(&r4));
}

/// The chain analysis behind the rewrite: "ranks jobs up to 10 hops
/// away" — 1 (write) + 0..8 (file path) + 1 (read).
#[test]
fn listing_1_hop_accounting_matches_paper_prose() {
    let q = parse(listings::LISTING_1).unwrap();
    let chain = find_chain(q.pattern().unwrap(), "q_j1", "q_j2").unwrap();
    assert_eq!(chain.lo, 2);
    assert_eq!(chain.hi, 10); // "up to 10 hops away"
    assert_eq!(chain.interior, vec!["q_f1".to_string(), "q_f2".to_string()]);
}
