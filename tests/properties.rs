//! Property-based tests on the system's core invariants, spanning
//! crates: rewrite equivalence on random lineage DAGs, knapsack
//! optimality against brute force, estimator upper bounds, CSR
//! structural invariants, and Prolog round-trips.

use proptest::prelude::*;

use kaskade::core::{
    cost::connector_size_estimate, knapsack, materialize, rewrite_over_connector, ConnectorDef,
    DdlOp, GraphDelta, Kaskade, KnapsackItem, Snapshot, VRef, ViewDef,
};
use kaskade::graph::{same_dense_graph, Graph, GraphBuilder, GraphStats, IdRemap, Schema, Value};
use kaskade::prolog::{parse_program, Term};
use kaskade::query::{execute, parse, Datum, Table};
use kaskade::service::{Engine, EngineConfig, ShardedConfig, ShardedEngine, SubmitOpts};

/// Strategy: a random layered job/file lineage DAG described as
/// (writes per job, reads wiring), with CPU properties.
fn lineage_graph(max_jobs: usize) -> impl Strategy<Value = Graph> {
    let jobs = 2..max_jobs;
    (jobs, any::<u64>()).prop_map(|(n_jobs, seed)| {
        // deterministic pseudo-random wiring from the seed, no rand dep
        let mut state = seed | 1;
        let mut next = move |m: usize| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as usize) % m.max(1)
        };
        let mut b = GraphBuilder::new();
        let mut jobs = Vec::new();
        let mut files: Vec<kaskade::graph::VertexId> = Vec::new();
        for i in 0..n_jobs {
            let j = b.add_vertex("Job");
            b.set_vertex_prop(j, "CPU", Value::Int((i as i64 % 7) + 1));
            // unique stable identity: vertex ids are graph-local, so
            // cross-graph (raw vs view) comparisons go through props
            b.set_vertex_prop(j, "name", Value::Str(format!("job{i}")));
            b.set_vertex_prop(j, "pipelineName", Value::Str(format!("p{}", i % 3)));
            // read up to 2 files produced earlier
            for _ in 0..next(3) {
                if !files.is_empty() {
                    let f = files[next(files.len())];
                    b.add_edge(f, j, "IS_READ_BY");
                }
            }
            // write up to 2 fresh files
            for _ in 0..(1 + next(2)) {
                let f = b.add_vertex("File");
                b.add_edge(j, f, "WRITES_TO");
                files.push(f);
            }
            jobs.push(j);
        }
        b.finish()
    })
}

fn normalized(t: &Table) -> Vec<String> {
    let mut rows: Vec<String> = t.rows.iter().map(|r| format!("{r:?}")).collect();
    rows.sort();
    rows
}

/// One random churn operation in the id space of `graph`: append (0),
/// edge retraction (1), cascading vertex retraction (2), or
/// delete-then-reinsert of one edge identity (3). The shared generator
/// of the compaction differential harnesses.
fn churn_op(graph: &Graph, op: u8, seed: u64) -> GraphDelta {
    let pick = |n: usize| (seed as usize) % n.max(1);
    let mut d = GraphDelta::new();
    match op {
        0 => {
            let files: Vec<_> = graph.vertices_of_type("File").collect();
            let j = d.add_vertex("Job", vec![("CPU".into(), Value::Int(3))]);
            if let Some(&f) = files.get(pick(files.len())) {
                d.add_edge(
                    VRef::Existing(f),
                    j,
                    "IS_READ_BY",
                    vec![("ts".into(), Value::Int(seed as i64 & 0xFF))],
                );
            }
        }
        1 => {
            let edges: Vec<_> = graph.edges().collect();
            if let Some(&e) = edges.get(pick(edges.len())) {
                d.del_edge(
                    VRef::Existing(graph.edge_src(e)),
                    VRef::Existing(graph.edge_dst(e)),
                    graph.edge_type(e),
                );
            }
        }
        2 => {
            let vertices: Vec<_> = graph.vertices().collect();
            if let Some(&v) = vertices.get(pick(vertices.len())) {
                d.del_vertex(v);
            }
        }
        _ => {
            let edges: Vec<_> = graph.edges().collect();
            if let Some(&e) = edges.get(pick(edges.len())) {
                let (s, t) = (graph.edge_src(e), graph.edge_dst(e));
                let ty = graph.edge_type(e).to_string();
                d.del_edge(VRef::Existing(s), VRef::Existing(t), &ty);
                d.add_edge(
                    VRef::Existing(s),
                    VRef::Existing(t),
                    &ty,
                    vec![("ts".into(), Value::Int(seed as i64 & 0xFF))],
                );
            }
        }
    }
    d
}

/// Canonical `(vertex count, sorted edges-with-provenance)` picture of
/// a view graph. View-local ids are positional over the live base
/// vertices, so compaction must leave them byte-identical.
type ViewPrint = (usize, Vec<(u32, u32, Option<i64>, Option<i64>)>);
fn view_fp(g: &Graph) -> ViewPrint {
    let mut v: Vec<_> = g
        .edges()
        .map(|e| {
            (
                g.edge_src(e).0,
                g.edge_dst(e).0,
                g.edge_prop(e, "ts").and_then(|p| p.as_int()),
                g.edge_prop(e, "support").and_then(|p| p.as_int()),
            )
        })
        .collect();
    v.sort();
    (g.vertex_count(), v)
}

/// Sorted rows with every `Datum::Vertex` translated through `remap` —
/// how the uncompacted oracle's answers are compared against the
/// compacted engine's.
fn rows_remapped(t: &Table, remap: &IdRemap) -> Vec<String> {
    let mut rows: Vec<String> = t
        .rows
        .iter()
        .map(|r| {
            let mapped: Vec<Datum> = r
                .iter()
                .map(|d| match d {
                    Datum::Vertex(v) => {
                        Datum::Vertex(remap.vertex(*v).expect("live result vertex survives"))
                    }
                    other => other.clone(),
                })
                .collect();
            format!("{mapped:?}")
        })
        .collect();
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// THE paper-critical invariant: for any lineage DAG and any valid
    /// even-hop window, the blast-radius-style query over the raw graph
    /// equals its rewriting over the materialized 2-hop connector.
    #[test]
    fn rewrite_equivalence_on_random_lineage(g in lineage_graph(40), upper in 0usize..8) {
        let query_src = format!(
            "SELECT A.name, COUNT(*), SUM(B.CPU) FROM (
               MATCH (j1:Job)-[:WRITES_TO]->(f1:File)
                     (f1:File)-[r*0..{upper}]->(f2:File)
                     (f2:File)-[:IS_READ_BY]->(j2:Job)
               RETURN j1 AS A, j2 AS B
             ) GROUP BY A.name"
        );
        let query = parse(&query_src).unwrap();
        let raw = execute(&g, &query).unwrap();

        let def = ConnectorDef::k_hop("Job", "Job", 2);
        let rewritten = rewrite_over_connector(
            &query, "j1", "j2", &def, &Schema::provenance(),
        ).expect("window [2, upper+2] is always coverable by k=2");
        let view = materialize(&g, &ViewDef::Connector(def.clone()));
        let viewed = execute(&view, &rewritten).unwrap();
        prop_assert_eq!(normalized(&raw), normalized(&viewed));
    }

    /// Branch-and-bound knapsack matches exhaustive search on small
    /// instances.
    #[test]
    fn knapsack_is_optimal(
        weights in proptest::collection::vec(0u64..30, 1..10),
        values in proptest::collection::vec(0u32..100, 1..10),
        capacity in 0u64..60,
    ) {
        let n = weights.len().min(values.len());
        let items: Vec<KnapsackItem> = (0..n)
            .map(|i| KnapsackItem { weight: weights[i], value: values[i] as f64 })
            .collect();
        let chosen = knapsack(&items, capacity);
        // feasibility
        let w: u64 = chosen.iter().map(|&i| items[i].weight).sum();
        prop_assert!(w <= capacity);
        let got: f64 = chosen.iter().map(|&i| items[i].value).sum();
        // brute force
        let mut best = 0.0f64;
        for mask in 0u32..(1 << n) {
            let (mut bw, mut bv) = (0u64, 0.0f64);
            for (i, item) in items.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    bw += item.weight;
                    bv += item.value;
                }
            }
            if bw <= capacity && bv > best {
                best = bv;
            }
        }
        prop_assert!((got - best).abs() < 1e-9, "got {} expected {}", got, best);
    }

    /// Eq. (2)/(3) with α=100 upper-bounds the deduplicated connector
    /// size on arbitrary lineage graphs (§V-A's upper-bound claim).
    #[test]
    fn alpha_100_estimate_upper_bounds_actual(g in lineage_graph(30)) {
        let stats = GraphStats::compute(&g);
        let def = ConnectorDef::k_hop("Job", "Job", 2);
        let est = connector_size_estimate(&stats, &def, 100);
        let actual = materialize(&g, &ViewDef::Connector(def.clone())).edge_count() as f64;
        prop_assert!(est >= actual, "est={} actual={}", est, actual);
    }

    /// CSR invariants hold for any insertion order: every edge appears
    /// exactly once in out-adjacency and once in in-adjacency.
    #[test]
    fn csr_adjacency_is_a_bijection(
        n in 1usize..30,
        edges in proptest::collection::vec((0usize..30, 0usize..30), 0..80),
    ) {
        let mut b = GraphBuilder::new();
        for _ in 0..n {
            b.add_vertex("V");
        }
        let mut expected = 0;
        for (s, d) in &edges {
            if *s < n && *d < n {
                b.add_edge(
                    kaskade::graph::VertexId(*s as u32),
                    kaskade::graph::VertexId(*d as u32),
                    "E",
                );
                expected += 1;
            }
        }
        let g = b.finish();
        prop_assert_eq!(g.edge_count(), expected);
        let out_total: usize = g.vertices().map(|v| g.out_degree(v)).sum();
        let in_total: usize = g.vertices().map(|v| g.in_degree(v)).sum();
        prop_assert_eq!(out_total, expected);
        prop_assert_eq!(in_total, expected);
        // adjacency agrees with edge endpoints
        for v in g.vertices() {
            for (e, w) in g.out_edges(v) {
                prop_assert_eq!(g.edge_src(e), v);
                prop_assert_eq!(g.edge_dst(e), w);
            }
        }
    }

    /// Prolog terms survive a display → parse round-trip (ground terms).
    #[test]
    fn prolog_ground_term_roundtrip(
        atoms in proptest::collection::vec("[a-z][a-z0-9_]{0,6}", 1..5),
        ints in proptest::collection::vec(-1000i64..1000, 1..5),
    ) {
        let args: Vec<Term> = atoms.iter().map(|a| Term::atom(a))
            .chain(ints.iter().map(|&i| Term::int(i)))
            .collect();
        let t = Term::compound("f", vec![Term::list(args.clone()), Term::compound("g", args)]);
        let src = format!("fact({t}).");
        let clauses = parse_program(&src).unwrap();
        prop_assert_eq!(clauses.len(), 1);
        let parsed = match &clauses[0].head {
            Term::Compound(_, a) => a[0].clone(),
            _ => unreachable!(),
        };
        prop_assert_eq!(parsed, t);
    }

    /// `edge_prefix(m)` always yields exactly `min(m, |E|)` edges and
    /// only vertices incident to them.
    #[test]
    fn edge_prefix_invariants(g in lineage_graph(30), m in 0usize..100) {
        let p = g.edge_prefix(m);
        prop_assert_eq!(p.edge_count(), m.min(g.edge_count()));
        // every vertex in the prefix is incident to some edge, unless
        // the prefix is the whole graph (then isolated vertices may
        // appear only if the original had none incident anyway)
        if p.edge_count() < g.edge_count() {
            for v in p.vertices() {
                prop_assert!(
                    p.out_degree(v) + p.in_degree(v) > 0,
                    "non-incident vertex in strict prefix"
                );
            }
        }
    }

    /// Schema::has_k_hop_walk agrees with explicit walk enumeration on
    /// small random schemas.
    #[test]
    fn schema_walk_dp_matches_enumeration(
        rules in proptest::collection::vec((0usize..4, 0usize..4), 1..8),
        k in 1usize..5,
    ) {
        let mut schema = Schema::new();
        let names = ["A", "B", "C", "D"];
        for t in names {
            schema.add_vertex_type(t);
        }
        for (s, d) in &rules {
            schema.add_edge_rule(names[*s], "E", names[*d]);
        }
        // explicit k-walk enumeration via adjacency powers (bool matrix)
        let mut reach = vec![[false; 4]; 4]; // walks of length exactly 1
        for (s, d) in &rules {
            reach[*s][*d] = true;
        }
        let step = reach.clone();
        for _ in 1..k {
            let mut next = vec![[false; 4]; 4];
            for a in 0..4 {
                for b in 0..4 {
                    if reach[a][b] {
                        for c in 0..4 {
                            if step[b][c] {
                                next[a][c] = true;
                            }
                        }
                    }
                }
            }
            reach = next;
        }
        for a in 0..4 {
            for b in 0..4 {
                prop_assert_eq!(
                    schema.has_k_hop_walk(names[a], names[b], k),
                    reach[a][b],
                    "{}->{} k={}", names[a], names[b], k
                );
            }
        }
    }

    /// Incremental statistics equal a from-scratch
    /// `GraphStats::compute` after ANY sequence of inserts, edge
    /// retractions, and vertex retractions — and the incrementally
    /// maintained connector view equals a from-scratch
    /// re-materialization at every step along the way.
    #[test]
    fn incremental_stats_and_views_survive_any_churn_sequence(
        g in lineage_graph(14),
        ops in proptest::collection::vec((0u8..4, any::<u64>()), 1..10),
    ) {
        let mut k = Kaskade::new(g, Schema::provenance());
        k.materialize_view(ViewDef::Connector(ConnectorDef::k_hop("Job", "Job", 2)));
        let def = ConnectorDef::k_hop("Job", "Job", 2);
        for (op, seed) in ops {
            let snap = k.snapshot();
            let graph = snap.graph();
            let pick = |n: usize| (seed as usize) % n.max(1);
            let mut d = GraphDelta::new();
            match op {
                // append: a new job reading an existing file
                0 => {
                    let files: Vec<_> = graph.vertices_of_type("File").collect();
                    let j = d.add_vertex("Job", vec![("CPU".into(), Value::Int(3))]);
                    if let Some(&f) = files.get(pick(files.len())) {
                        d.add_edge(VRef::Existing(f), j, "IS_READ_BY",
                                   vec![("ts".into(), Value::Int(seed as i64 & 0xFF))]);
                    }
                }
                // retract an arbitrary live edge by identity
                1 => {
                    let edges: Vec<_> = graph.edges().collect();
                    if let Some(&e) = edges.get(pick(edges.len())) {
                        d.del_edge(
                            VRef::Existing(graph.edge_src(e)),
                            VRef::Existing(graph.edge_dst(e)),
                            graph.edge_type(e),
                        );
                    }
                }
                // retract an arbitrary live vertex (cascades)
                2 => {
                    let vertices: Vec<_> = graph.vertices().collect();
                    if let Some(&v) = vertices.get(pick(vertices.len())) {
                        d.del_vertex(v);
                    }
                }
                // delete-then-reinsert the same edge identity
                _ => {
                    let edges: Vec<_> = graph.edges().collect();
                    if let Some(&e) = edges.get(pick(edges.len())) {
                        let (s, t) = (graph.edge_src(e), graph.edge_dst(e));
                        let ty = graph.edge_type(e).to_string();
                        d.del_edge(VRef::Existing(s), VRef::Existing(t), &ty);
                        d.add_edge(VRef::Existing(s), VRef::Existing(t), &ty,
                                   vec![("ts".into(), Value::Int(seed as i64 & 0xFF))]);
                    }
                }
            }
            if d.is_empty() {
                continue;
            }
            k.apply_delta(&d);
            // incremental stats are EXACTLY the full recompute
            prop_assert_eq!(k.stats(), &GraphStats::compute(k.graph()));
            // the maintained connector view equals a scratch rebuild
            let maintained = &k.catalog().get(&ViewDef::Connector(def.clone()).id()).unwrap().graph;
            let fresh = materialize(k.graph(), &ViewDef::Connector(def.clone()));
            let fp = |g: &Graph| {
                let mut v: Vec<_> = g.edges().map(|e| (
                    g.edge_src(e).0, g.edge_dst(e).0,
                    g.edge_prop(e, "ts").and_then(|p| p.as_int()),
                    g.edge_prop(e, "support").and_then(|p| p.as_int()),
                )).collect();
                v.sort();
                v
            };
            prop_assert_eq!(fp(maintained), fp(&fresh));
            prop_assert_eq!(maintained.vertex_count(), fresh.vertex_count());
        }
    }

    /// THE sharding acceptance property: for any schema-valid sequence
    /// of inserts, edge retractions, and vertex retractions, and any
    /// shard count in {1, 2, 3, 8}, the [`ShardedEngine`] is
    /// observationally identical to the unsharded [`Engine`] — every
    /// query result is byte-identical (vertex ids, aggregates, and row
    /// order included), every maintained view materializes to the same
    /// graph, and the merged per-shard statistics equal both the
    /// single engine's incremental statistics and an exact
    /// `GraphStats::compute`.
    #[test]
    fn sharded_engine_is_observationally_identical(
        g in lineage_graph(12),
        ops in proptest::collection::vec((0u8..4, any::<u64>()), 1..8),
        shard_sel in 0usize..4,
    ) {
        let shards = [1usize, 2, 3, 8][shard_sel];
        let mut k = Kaskade::new(g, Schema::provenance());
        k.materialize_view(ViewDef::Connector(ConnectorDef::k_hop("Job", "Job", 2)));
        let single = Engine::from_kaskade(&k);
        let sharded = ShardedEngine::with_config(
            k.snapshot(),
            kaskade::service::ShardedConfig {
                scatter_min_vertices: 0, // always exercise scatter/gather
                ..kaskade::service::ShardedConfig::hash(shards)
            },
        );

        for (op, seed) in ops {
            let snap = single.snapshot();
            let graph = snap.state.graph();
            let pick = |n: usize| (seed as usize) % n.max(1);
            let mut d = GraphDelta::new();
            match op {
                // append: a new job reading an existing file, writing a
                // new file (a cross-shard chain under any partitioner)
                0 => {
                    let files: Vec<_> = graph.vertices_of_type("File").collect();
                    let j = d.add_vertex("Job", vec![("CPU".into(), Value::Int(3))]);
                    if let Some(&f) = files.get(pick(files.len())) {
                        d.add_edge(VRef::Existing(f), j, "IS_READ_BY",
                                   vec![("ts".into(), Value::Int(seed as i64 & 0xFF))]);
                    }
                    let nf = d.add_vertex("File", vec![]);
                    d.add_edge(j, nf, "WRITES_TO", vec![("ts".into(), Value::Int(7))]);
                }
                // retract an arbitrary live edge by identity
                1 => {
                    let edges: Vec<_> = graph.edges().collect();
                    if let Some(&e) = edges.get(pick(edges.len())) {
                        d.del_edge(
                            VRef::Existing(graph.edge_src(e)),
                            VRef::Existing(graph.edge_dst(e)),
                            graph.edge_type(e),
                        );
                    }
                }
                // retract an arbitrary live vertex (cascades on every
                // shard holding incident edges)
                2 => {
                    let vertices: Vec<_> = graph.vertices().collect();
                    if let Some(&v) = vertices.get(pick(vertices.len())) {
                        d.del_vertex(v);
                    }
                }
                // delete-then-reinsert the same edge identity
                _ => {
                    let edges: Vec<_> = graph.edges().collect();
                    if let Some(&e) = edges.get(pick(edges.len())) {
                        let (s, t) = (graph.edge_src(e), graph.edge_dst(e));
                        let ty = graph.edge_type(e).to_string();
                        d.del_edge(VRef::Existing(s), VRef::Existing(t), &ty);
                        d.add_edge(VRef::Existing(s), VRef::Existing(t), &ty,
                                   vec![("ts".into(), Value::Int(seed as i64 & 0xFF))]);
                    }
                }
            }
            if d.is_empty() {
                continue;
            }
            single.submit(d.clone(), SubmitOpts::default()).unwrap();
            sharded.submit(d, SubmitOpts::default()).unwrap();
            single.flush();
            sharded.flush();
        }

        let single_snap = single.snapshot();
        let sharded_snap = sharded.snapshot();
        prop_assert!(sharded_snap.is_coherent(), "torn sharded snapshot");

        // every query result is byte-identical (scatter/gather included)
        for q in [
            "SELECT COUNT(*) FROM (MATCH (a:Job)-[:WRITES_TO]->(f:File) \
             (f:File)-[:IS_READ_BY]->(b:Job) RETURN a AS A, b AS B)",
            "MATCH (x:File)-[r*0..4]->(y:File) RETURN x, y",
            "SELECT A.name, COUNT(*) FROM (MATCH (a:Job)-[:WRITES_TO]->(f:File) \
             RETURN a AS A, f AS F) GROUP BY A.name",
            "MATCH (a:Job)-[:WRITES_TO]->(f:File) (f:File)-[:IS_READ_BY]->(b:Job) \
             (b:Job)-[:WRITES_TO]->(g:File) RETURN a, g",
        ] {
            let query = parse(q).unwrap();
            let a = single.execute(&query).unwrap();
            let b = sharded.execute(&query).unwrap();
            prop_assert_eq!(a, b, "query diverged over {} shards: {}", shards, q);
        }

        // every maintained view materializes identically
        let fp = |g: &Graph| {
            let mut v: Vec<_> = g.edges().map(|e| (
                g.edge_src(e).0, g.edge_dst(e).0,
                g.edge_prop(e, "ts").and_then(|p| p.as_int()),
                g.edge_prop(e, "support").and_then(|p| p.as_int()),
            )).collect();
            v.sort();
            (g.vertex_count(), v)
        };
        prop_assert_eq!(
            single_snap.state.catalog().len(),
            sharded_snap.state.catalog().len()
        );
        for view in single_snap.state.catalog().iter() {
            let other = sharded_snap.state.catalog().get(&view.def.id())
                .expect("view present on the sharded engine");
            prop_assert_eq!(fp(&view.graph), fp(&other.graph), "view {} diverged", view.def.id());
        }

        // merged per-shard statistics equal the single engine's
        // incremental statistics, and both equal an exact recompute
        prop_assert_eq!(single_snap.state.stats(), sharded_snap.state.stats());
        prop_assert_eq!(
            sharded_snap.state.stats(),
            &GraphStats::compute(sharded_snap.state.graph())
        );
    }

    /// THE merged-publish acceptance property: the sharded router no
    /// longer re-runs `apply_delta` over the global graph — it stages
    /// the batch's mutations and assembles the published CSR from the
    /// shard CSRs in parallel. For any schema-valid churn sequence and
    /// any shard count in {1, 2, 3, 8}, the graph published after
    /// **every** batch must be structurally identical to the serial
    /// `apply_delta` result the unsharded engine publishes: same id
    /// slots, same liveness/ghost/type per slot, same properties, same
    /// adjacency arrays in the same order (`same_dense_graph` is the
    /// field-by-field oracle).
    #[test]
    fn merged_publish_is_identical_to_serial_apply(
        g in lineage_graph(12),
        ops in proptest::collection::vec((0u8..4, any::<u64>()), 1..10),
        shard_sel in 0usize..4,
    ) {
        let shards = [1usize, 2, 3, 8][shard_sel];
        let mut k = Kaskade::new(g, Schema::provenance());
        // a maintained view keeps the pool-backed refresh path in the
        // loop while the merge runs
        k.materialize_view(ViewDef::Connector(ConnectorDef::k_hop("Job", "Job", 2)));
        let single = Engine::from_kaskade(&k);
        let sharded = ShardedEngine::with_config(
            k.snapshot(),
            kaskade::service::ShardedConfig {
                scatter_min_vertices: 0,
                ..kaskade::service::ShardedConfig::hash(shards)
            },
        );

        for (op, seed) in ops {
            let snap = single.snapshot();
            let d = churn_op(snap.state.graph(), op, seed);
            if d.is_empty() {
                continue;
            }
            single.submit(d.clone(), SubmitOpts::default()).unwrap();
            sharded.submit(d, SubmitOpts::default()).unwrap();
            single.flush();
            sharded.flush();
            // compare after every single publish, not just the last:
            // a merge bug that a later batch happens to paper over
            // (e.g. via tombstones) must still be caught
            let a = single.snapshot();
            let b = sharded.snapshot();
            if let Err(why) = same_dense_graph(a.state.graph(), b.state.graph()) {
                prop_assert!(
                    false,
                    "merged publish diverged from serial apply over {} shards: {}",
                    shards,
                    why
                );
            }
        }
    }

    /// THE refresh-DAG acceptance property: for any schema-valid
    /// insert/delete sequence and any shard count in {1, 4}, a catalog
    /// forming a DAG of composed views — a connector, a summarizer
    /// maintained *over* that connector, a vertex aggregator, and a
    /// source-sink contraction — stays purely incremental: every view
    /// in the final snapshot equals a from-scratch materialization
    /// over the same base graph, statistics equal an exact recompute
    /// (both via the `snapshot_is_consistent` oracle), engines agree
    /// byte-identically on queries, and neither write path ever fell
    /// back to a full re-materialization of the composed view.
    #[test]
    fn composed_view_dag_refresh_matches_scratch(
        g in lineage_graph(12),
        ops in proptest::collection::vec((0u8..4, any::<u64>()), 1..10),
        shard_sel in 0usize..2,
    ) {
        use kaskade::core::{AggOp, ComposedDef, PropPredicate, SourceSinkDef, SummarizerDef};
        let shards = [1usize, 4][shard_sel];
        let mut k = Kaskade::new(g, Schema::provenance());
        let connector = ConnectorDef::k_hop("Job", "Job", 2);
        k.materialize_view(ViewDef::Connector(connector.clone()));
        k.materialize_view(ViewDef::Composed(ComposedDef {
            connector,
            summarizer: SummarizerDef::EdgePredicate {
                keep: PropPredicate::IntAtLeast("support".into(), 2),
            },
        }));
        k.materialize_view(ViewDef::Summarizer(SummarizerDef::VertexAggregator {
            vtype: "Job".into(),
            group_prop: "pipelineName".into(),
            agg_prop: "CPU".into(),
            agg: AggOp::Sum,
        }));
        k.materialize_view(ViewDef::SourceSink(SourceSinkDef::default()));

        let single = Engine::from_kaskade(&k);
        let sharded = ShardedEngine::with_config(
            k.snapshot(),
            ShardedConfig {
                scatter_min_vertices: 0,
                ..ShardedConfig::hash(shards)
            },
        );
        for (op, seed) in ops {
            let snap = single.snapshot();
            let d = churn_op(snap.state.graph(), op, seed);
            if d.is_empty() {
                continue;
            }
            single.submit(d.clone(), SubmitOpts::based_on(snap.epoch)).unwrap();
            sharded.submit(d, SubmitOpts::default()).unwrap();
            single.flush();
            sharded.flush();
        }

        let single_snap = single.snapshot();
        let sharded_snap = sharded.snapshot();
        prop_assert!(sharded_snap.is_coherent(), "torn sharded snapshot");
        // every view of every variant equals scratch, stats exact
        prop_assert!(kaskade::service::snapshot_is_consistent(&single_snap.state));
        prop_assert!(kaskade::service::snapshot_is_consistent(&sharded_snap.state));
        // the refresh DAG never lost the upstream context: zero full
        // re-materializations of the composed view on either path
        let m1 = single.metrics();
        let mn = sharded.metrics().global;
        prop_assert_eq!(m1.views_rematerialized, 0);
        prop_assert_eq!(mn.views_rematerialized, 0);
        if m1.deltas_applied > 0 {
            prop_assert!(m1.views_refreshed > 0, "DAG refresh never ran: {:?}", m1);
        }
        // and the engines agree on query results
        for q in [
            "SELECT COUNT(*) FROM (MATCH (a:Job)-[:WRITES_TO]->(f:File) \
             (f:File)-[:IS_READ_BY]->(b:Job) RETURN a AS A, b AS B)",
            "SELECT A.name, COUNT(*) FROM (MATCH (a:Job)-[:WRITES_TO]->(f:File) \
             RETURN a AS A, f AS F) GROUP BY A.name",
        ] {
            let query = parse(q).unwrap();
            let a = single.execute(&query).unwrap();
            let b = sharded.execute(&query).unwrap();
            prop_assert_eq!(a, b, "query diverged over {} shards: {}", shards, q);
        }
    }

    /// THE compaction acceptance property (unsharded half): for any
    /// insert/delete sequence, compacting and then replaying deltas
    /// that were built in the *pre-compaction* id space (rebased with
    /// `GraphDelta::remap`, exactly like the engine rebases queued
    /// deltas behind its epoch fence) yields query results, maintained
    /// views, and statistics identical to never compacting at all —
    /// aggregates byte-for-byte, vertex bindings modulo the remap.
    #[test]
    fn compact_then_replay_matches_uncompacted(
        g in lineage_graph(14),
        pre in proptest::collection::vec((0u8..4, any::<u64>()), 1..8),
        post in proptest::collection::vec((0u8..4, any::<u64>()), 1..8),
    ) {
        let mut k = Kaskade::new(g, Schema::provenance());
        k.materialize_view(ViewDef::Connector(ConnectorDef::k_hop("Job", "Job", 2)));
        let mut uncompacted: Snapshot = k.snapshot();
        // phase 1: random churn accumulates tombstones
        for (op, seed) in pre {
            let d = churn_op(uncompacted.graph(), op, seed);
            if !d.is_empty() {
                uncompacted = uncompacted.with_delta(&d);
            }
        }

        let (mut compacted, remap) = uncompacted.compact();
        prop_assert_eq!(remap.reclaimed(),
                        uncompacted.graph().vertex_slots() - compacted.graph().vertex_slots());
        // GraphStats stay exactly equal under compaction
        prop_assert_eq!(compacted.stats(), uncompacted.stats());
        prop_assert_eq!(compacted.stats(), &GraphStats::compute(compacted.graph()));
        // carried-over views are byte-identical (positional ids)
        for view in uncompacted.catalog().iter() {
            let other = compacted.catalog().get(&view.def.id()).unwrap();
            prop_assert_eq!(view_fp(&view.graph), view_fp(&other.graph));
        }

        // phase 2: replay deltas built against the UNCOMPACTED state —
        // the "queued before the fence" scenario — rebased via remap
        let count_q = parse(
            "SELECT COUNT(*) FROM (MATCH (a:Job)-[:WRITES_TO]->(f:File) \
             (f:File)-[:IS_READ_BY]->(b:Job) RETURN a AS A, b AS B)").unwrap();
        let group_q = parse(
            "SELECT A.name, COUNT(*) FROM (MATCH (a:Job)-[:WRITES_TO]->(f:File) \
             RETURN a AS A, f AS F) GROUP BY A.name").unwrap();
        let vertex_q = parse("MATCH (x:File)-[r*0..4]->(y:File) RETURN x, y").unwrap();
        for (op, seed) in post {
            let d = churn_op(uncompacted.graph(), op, seed);
            if d.is_empty() {
                continue;
            }
            let mut rebased = d.clone();
            rebased.remap(&remap);
            uncompacted = uncompacted.with_delta(&d);
            compacted = compacted.with_delta(&rebased);

            prop_assert_eq!(compacted.stats(), uncompacted.stats());
            prop_assert_eq!(compacted.stats(), &GraphStats::compute(compacted.graph()));
            for view in uncompacted.catalog().iter() {
                let other = compacted.catalog().get(&view.def.id()).unwrap();
                prop_assert_eq!(view_fp(&view.graph), view_fp(&other.graph));
            }
            // aggregate and projection answers are byte-identical
            prop_assert_eq!(
                normalized(&uncompacted.execute(&count_q).unwrap()),
                normalized(&compacted.execute(&count_q).unwrap())
            );
            prop_assert_eq!(
                normalized(&uncompacted.execute(&group_q).unwrap()),
                normalized(&compacted.execute(&group_q).unwrap())
            );
            // vertex bindings agree modulo the id renumbering
            prop_assert_eq!(
                rows_remapped(&execute(uncompacted.graph(), &vertex_q).unwrap(), &remap),
                normalized(&execute(compacted.graph(), &vertex_q).unwrap())
            );
        }
    }

    /// THE compaction acceptance property (sharded half): under
    /// delete/reinsert turnover aggressive enough to force several
    /// compactions, a compacting `ShardedEngine` (shard counts {1, 4},
    /// coordinated per-shard ghost compaction) stays byte-identical to
    /// the compacting single `Engine` — query results including vertex
    /// ids and row order, maintained views, merged statistics — and
    /// both pass the absolute from-scratch oracle after every flush
    /// window.
    #[test]
    fn compacting_engines_stay_observationally_identical(
        g in lineage_graph(12),
        ops in proptest::collection::vec((0u8..4, any::<u64>()), 1..8),
        shard_sel in 0usize..2,
    ) {
        let shards = [1usize, 4][shard_sel];
        let mut k = Kaskade::new(g, Schema::provenance());
        k.materialize_view(ViewDef::Connector(ConnectorDef::k_hop("Job", "Job", 2)));
        let single = Engine::with_config(
            k.snapshot(),
            EngineConfig { compact_dead_ratio: 0.05, ..EngineConfig::default() },
        );
        let sharded = ShardedEngine::with_config(
            k.snapshot(),
            ShardedConfig {
                scatter_min_vertices: 0, // always exercise scatter/gather
                compact_dead_ratio: 0.05,
                ..ShardedConfig::hash(shards)
            },
        );

        // scripted turnover: delete-then-reinsert one edge identity per
        // round at constant live size — the dead-slot accumulation that
        // guarantees both engines cross the compaction threshold
        for round in 0..30u64 {
            let snap = single.snapshot();
            let graph = snap.state.graph();
            let Some(e) = graph.edges().next() else { break };
            let (s, t) = (graph.edge_src(e), graph.edge_dst(e));
            let ty = graph.edge_type(e).to_string();
            let mut d = GraphDelta::new();
            d.del_edge(VRef::Existing(s), VRef::Existing(t), &ty);
            d.add_edge(VRef::Existing(s), VRef::Existing(t), &ty,
                       vec![("ts".into(), Value::Int(round as i64))]);
            single.submit(d.clone(), SubmitOpts::based_on(snap.epoch)).unwrap();
            sharded.submit(d, SubmitOpts::default()).unwrap();
            single.flush();
            sharded.flush();
        }
        // plus random churn on top, derived from the live id space
        for (op, seed) in ops {
            let snap = single.snapshot();
            let d = churn_op(snap.state.graph(), op, seed);
            if d.is_empty() {
                continue;
            }
            single.submit(d.clone(), SubmitOpts::based_on(snap.epoch)).unwrap();
            sharded.submit(d, SubmitOpts::default()).unwrap();
            single.flush();
            sharded.flush();
        }

        // the turnover actually forced the fence, identically
        let single_report = single.metrics();
        let sharded_report = sharded.metrics();
        prop_assert!(single_report.compactions_run >= 1, "{:?}", single_report);
        prop_assert_eq!(
            single_report.compactions_run,
            sharded_report.global.compactions_run,
            "engines compacted at different points"
        );
        prop_assert!(single_report.slots_reclaimed > 0);

        let single_snap = single.snapshot();
        let sharded_snap = sharded.snapshot();
        prop_assert!(sharded_snap.is_coherent(), "torn sharded snapshot");
        prop_assert!(kaskade::service::snapshot_is_consistent(&single_snap.state));
        prop_assert!(kaskade::service::snapshot_is_consistent(&sharded_snap.state));

        // byte-identical queries (vertex ids and row order included)
        for q in [
            "SELECT COUNT(*) FROM (MATCH (a:Job)-[:WRITES_TO]->(f:File) \
             (f:File)-[:IS_READ_BY]->(b:Job) RETURN a AS A, b AS B)",
            "MATCH (x:File)-[r*0..4]->(y:File) RETURN x, y",
            "SELECT A.name, COUNT(*) FROM (MATCH (a:Job)-[:WRITES_TO]->(f:File) \
             RETURN a AS A, f AS F) GROUP BY A.name",
        ] {
            let query = parse(q).unwrap();
            prop_assert_eq!(
                single.execute(&query).unwrap(),
                sharded.execute(&query).unwrap(),
                "query diverged over {} shards after compaction: {}", shards, q
            );
        }
        // views and stats
        for view in single_snap.state.catalog().iter() {
            let other = sharded_snap.state.catalog().get(&view.def.id())
                .expect("view present on the sharded engine");
            prop_assert_eq!(view_fp(&view.graph), view_fp(&other.graph));
        }
        prop_assert_eq!(single_snap.state.stats(), sharded_snap.state.stats());
        // the leak is actually fixed: capacity bounded relative to live
        let g = single_snap.state.graph();
        let live = g.vertex_count() + g.edge_count();
        let capacity = g.vertex_slots() + g.edge_slots();
        prop_assert!(capacity <= 2 * live + 64,
                     "capacity {} not bounded vs live {}", capacity, live);
    }

    /// THE live-DDL acceptance property: for any interleaving of churn
    /// deltas with mid-stream `CreateView`/`DropView` DDL, a live
    /// engine converges to exactly the state of an engine constructed
    /// with the **final** catalog from the start and fed only the
    /// deltas — the base graph is structurally identical slot for slot
    /// (`same_dense_graph`), every surviving view's content is
    /// byte-identical per definition id (slot numbering aside: the
    /// live engine's tombstones shift its `ViewId`s), and query
    /// answers agree byte for byte. Holds on the single engine and on
    /// a 4-shard coordinator driven by the identical op stream.
    #[test]
    fn ddl_interleave_matches_static_final_catalog(
        g in lineage_graph(12),
        ops in proptest::collection::vec((0u8..6, any::<u64>()), 1..10),
    ) {
        let mut k = Kaskade::new(g.clone(), Schema::provenance());
        k.materialize_view(ViewDef::Connector(ConnectorDef::k_hop("Job", "Job", 2)));
        let single = Engine::from_kaskade(&k);
        let sharded = ShardedEngine::with_config(
            k.snapshot(),
            ShardedConfig {
                scatter_min_vertices: 0, // always exercise scatter/gather
                ..ShardedConfig::hash(4)
            },
        );
        let candidates = [
            ViewDef::Connector(ConnectorDef::k_hop("Job", "Job", 2)),
            ViewDef::Connector(ConnectorDef::k_hop("Job", "Job", 4)),
        ];

        // identical op stream to both live engines; deltas alone are
        // recorded for the static oracle's replay
        let mut deltas: Vec<GraphDelta> = Vec::new();
        for (op, seed) in ops {
            let snap = single.snapshot();
            match op {
                4 => {
                    let def = candidates[(seed as usize) % candidates.len()].clone();
                    prop_assert!(single.submit_ddl(DdlOp::CreateView(def.clone())));
                    prop_assert!(sharded.submit_ddl(DdlOp::CreateView(def)));
                }
                5 => {
                    // drop a live slot if any (ViewIds agree: both
                    // engines processed the same catalog history)
                    let live: Vec<_> = snap.state.catalog()
                        .iter_with_ids().map(|(id, _)| id).collect();
                    let Some(&target) = live.get((seed as usize) % live.len().max(1))
                        else { continue };
                    prop_assert!(single.submit_ddl(DdlOp::DropView(target)));
                    prop_assert!(sharded.submit_ddl(DdlOp::DropView(target)));
                }
                _ => {
                    let d = churn_op(snap.state.graph(), op, seed);
                    if d.is_empty() {
                        continue;
                    }
                    deltas.push(d.clone());
                    single.submit(d.clone(), SubmitOpts::default()).unwrap();
                    sharded.submit(d, SubmitOpts::default()).unwrap();
                }
            }
            single.flush();
            sharded.flush();
        }

        // static oracle: the final catalog from construction time, fed
        // only the deltas
        let final_snap = single.snapshot();
        let mut oracle = Kaskade::new(g, Schema::provenance());
        for view in final_snap.state.catalog().iter() {
            oracle.materialize_view(view.def.clone());
        }
        let oracle = Engine::from_kaskade(&oracle);
        for d in deltas {
            oracle.submit(d, SubmitOpts::default()).unwrap();
            // same batch boundaries as the live run: batch merging
            // cancels insert-then-delete pairs, which changes slot
            // allocation — a real divergence, not the one under test
            oracle.flush();
        }
        let oracle_snap = oracle.snapshot();

        let sharded_snap = sharded.snapshot();
        prop_assert!(sharded_snap.is_coherent(), "torn sharded snapshot");
        for snap in [&final_snap.state, &sharded_snap.state] {
            // base graphs identical slot for slot
            if let Err(why) = same_dense_graph(oracle_snap.state.graph(), snap.graph()) {
                prop_assert!(false, "DDL interleave diverged from static catalog: {}", why);
            }
            // per-definition view contents byte-identical
            prop_assert_eq!(snap.catalog().len(), oracle_snap.state.catalog().len());
            for view in oracle_snap.state.catalog().iter() {
                let live = snap.catalog().get(&view.def.id())
                    .expect("surviving view present on the live engine");
                prop_assert_eq!(view_fp(&view.graph), view_fp(&live.graph));
            }
            prop_assert!(kaskade::service::snapshot_is_consistent(snap));
        }
        // query answers byte-identical across all three
        for q in [
            "SELECT COUNT(*) FROM (MATCH (a:Job)-[:WRITES_TO]->(f:File) \
             (f:File)-[:IS_READ_BY]->(b:Job) RETURN a AS A, b AS B)",
            "SELECT A.name, COUNT(*) FROM (MATCH (a:Job)-[:WRITES_TO]->(f:File) \
             RETURN a AS A, f AS F) GROUP BY A.name",
        ] {
            let query = parse(q).unwrap();
            let expected = oracle.execute(&query).unwrap();
            prop_assert_eq!(&single.execute(&query).unwrap(), &expected, "single: {}", q);
            prop_assert_eq!(&sharded.execute(&query).unwrap(), &expected, "4-shard: {}", q);
        }
    }

    /// Variable-length reachability is monotone in the hop bound.
    #[test]
    fn var_length_monotone_in_upper_bound(g in lineage_graph(30), hi in 1usize..6) {
        let q_small = parse(&format!(
            "MATCH (a:Job)-[e*1..{hi}]->(b) RETURN a, b"
        )).unwrap();
        let q_big = parse(&format!(
            "MATCH (a:Job)-[e*1..{}]->(b) RETURN a, b", hi + 1
        )).unwrap();
        let small = execute(&g, &q_small).unwrap().len();
        let big = execute(&g, &q_big).unwrap().len();
        prop_assert!(big >= small);
    }
}
