//! Crash-safety, end to end: SIGKILL a real `kaskade serve` process
//! mid-churn (no shutdown path runs, the log ends wherever the
//! scheduler left it), scribble an extra torn frame on the WAL tail
//! for good measure, then restart with `--recover` and require a
//! consistent, epoch-monotonic resume.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kaskade-rec-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn killed_server_recovers_consistently() {
    let bin = env!("CARGO_BIN_EXE_kaskade");
    let dir = tmpdir("crash");
    let wal = dir.join("wal.log");

    // a long-running churn server we will never let finish
    let mut child = Command::new(bin)
        .args([
            "serve",
            "prov",
            "--wal-dir",
            dir.to_str().unwrap(),
            "--checkpoint-every",
            "4",
            "--workload",
            "churn",
            "--write-every-ms",
            "1",
            "--duration-ms",
            "120000",
            "--threads",
            "1",
            "--no-fsync",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn kaskade serve");

    // wait until a few batch records are durably in the log
    let deadline = Instant::now() + Duration::from_secs(90);
    loop {
        let size = std::fs::metadata(&wal).map(|m| m.len()).unwrap_or(0);
        if size > 8 + 512 {
            break;
        }
        assert!(
            child.try_wait().expect("try_wait").is_none(),
            "server exited before it could be killed"
        );
        assert!(
            Instant::now() < deadline,
            "WAL never grew past one record (size {size})"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    // kill -9: the writer dies between fsync and publish, or mid-append
    child.kill().expect("SIGKILL");
    child.wait().expect("reap");

    // worst-case tail: a frame header promising 64 bytes, followed by
    // 10 bytes of garbage. Recovery must treat it as a torn write and
    // stop replay cleanly, not error out.
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&wal)
        .expect("open WAL tail");
    f.write_all(&64u32.to_le_bytes()).unwrap();
    f.write_all(&0xDEAD_BEEFu32.to_le_bytes()).unwrap();
    f.write_all(&[0xAB; 10]).unwrap();
    drop(f);

    // restart from nothing but the WAL directory; --recover forces the
    // end-of-run consistency verification against a scratch rebuild
    let out = Command::new(bin)
        .args([
            "serve",
            "prov",
            "--wal-dir",
            dir.to_str().unwrap(),
            "--recover",
            "--duration-ms",
            "300",
            "--write-every-ms",
            "2",
            "--threads",
            "1",
            "--stats-json",
            "--no-fsync",
        ])
        .output()
        .expect("run kaskade serve --recover");
    let stderr = String::from_utf8_lossy(&out.stderr);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "recovery run failed\n--- stderr ---\n{stderr}\n--- stdout ---\n{stdout}"
    );

    // the process actually recovered state (it did not fall back to a
    // fresh start), and epochs resumed monotonically from there
    let recovered: u64 = stderr
        .lines()
        .find_map(|l| l.strip_prefix("recovered epoch "))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("no recovery line in stderr:\n{stderr}"));
    assert!(recovered >= 1, "expected durable epochs before the kill");
    let final_epoch: u64 = stdout
        .split("\"epoch\":")
        .nth(1)
        .and_then(|rest| rest.split(',').next())
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("no epoch in stats json:\n{stdout}"));
    assert!(
        final_epoch >= recovered,
        "epoch regressed across recovery: {final_epoch} < {recovered}"
    );
    assert!(
        stdout.contains("\"final_consistent\":true"),
        "recovered state failed the scratch-rebuild comparison:\n{stdout}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
