//! Crash-safety, end to end: SIGKILL a real `kaskade serve` process
//! mid-churn (no shutdown path runs, the log ends wherever the
//! scheduler left it), scribble an extra torn frame on the WAL tail
//! for good measure, then restart with `--recover` and require a
//! consistent, epoch-monotonic resume.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kaskade-rec-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn killed_server_recovers_consistently() {
    let bin = env!("CARGO_BIN_EXE_kaskade");
    let dir = tmpdir("crash");
    let wal = dir.join("wal.log");

    // a long-running churn server we will never let finish
    let mut child = Command::new(bin)
        .args([
            "serve",
            "prov",
            "--wal-dir",
            dir.to_str().unwrap(),
            "--checkpoint-every",
            "4",
            "--workload",
            "churn",
            "--write-every-ms",
            "1",
            "--duration-ms",
            "120000",
            "--threads",
            "1",
            "--no-fsync",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn kaskade serve");

    // wait until a few batch records are durably in the log
    let deadline = Instant::now() + Duration::from_secs(90);
    loop {
        let size = std::fs::metadata(&wal).map(|m| m.len()).unwrap_or(0);
        if size > 8 + 512 {
            break;
        }
        assert!(
            child.try_wait().expect("try_wait").is_none(),
            "server exited before it could be killed"
        );
        assert!(
            Instant::now() < deadline,
            "WAL never grew past one record (size {size})"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    // kill -9: the writer dies between fsync and publish, or mid-append
    child.kill().expect("SIGKILL");
    child.wait().expect("reap");

    // worst-case tail: a frame header promising 64 bytes, followed by
    // 10 bytes of garbage. Recovery must treat it as a torn write and
    // stop replay cleanly, not error out.
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&wal)
        .expect("open WAL tail");
    f.write_all(&64u32.to_le_bytes()).unwrap();
    f.write_all(&0xDEAD_BEEFu32.to_le_bytes()).unwrap();
    f.write_all(&[0xAB; 10]).unwrap();
    drop(f);

    // restart from nothing but the WAL directory; --recover forces the
    // end-of-run consistency verification against a scratch rebuild
    let out = Command::new(bin)
        .args([
            "serve",
            "prov",
            "--wal-dir",
            dir.to_str().unwrap(),
            "--recover",
            "--duration-ms",
            "300",
            "--write-every-ms",
            "2",
            "--threads",
            "1",
            "--stats-json",
            "--no-fsync",
        ])
        .output()
        .expect("run kaskade serve --recover");
    let stderr = String::from_utf8_lossy(&out.stderr);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "recovery run failed\n--- stderr ---\n{stderr}\n--- stdout ---\n{stdout}"
    );

    // the process actually recovered state (it did not fall back to a
    // fresh start), and epochs resumed monotonically from there
    let recovered: u64 = stderr
        .lines()
        .find_map(|l| l.strip_prefix("recovered epoch "))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("no recovery line in stderr:\n{stderr}"));
    assert!(recovered >= 1, "expected durable epochs before the kill");
    let final_epoch: u64 = stdout
        .split("\"epoch\":")
        .nth(1)
        .and_then(|rest| rest.split(',').next())
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("no epoch in stats json:\n{stdout}"));
    assert!(
        final_epoch >= recovered,
        "epoch regressed across recovery: {final_epoch} < {recovered}"
    );
    assert!(
        stdout.contains("\"final_consistent\":true"),
        "recovered state failed the scratch-rebuild comparison:\n{stdout}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The self-driving acceptance run: a 4-shard `--adaptive` burst
/// server migrates its view set online (the advisor both creates and
/// drops views, observed through the scrape endpoint), is SIGKILLed
/// mid-flight, and `--recover` resumes with the post-DDL catalog
/// intact — the advisor-created connector is live in the recovered
/// catalog, the recovered state passes the scratch-rebuild oracle,
/// and the resumed run maintains the surviving views incrementally
/// (zero re-materializations).
#[test]
fn killed_adaptive_sharded_server_recovers_post_ddl_catalog() {
    use std::io::{BufRead, BufReader, Read as _, Write as _};

    let bin = env!("CARGO_BIN_EXE_kaskade");
    let dir = tmpdir("adaptive");

    // an adaptive 4-shard burst server, starting from an EMPTY catalog:
    // every view in the final catalog exists only because the advisor
    // created it through live DDL
    let mut child = Command::new(bin)
        .args([
            "serve",
            "prov",
            "--wal-dir",
            dir.to_str().unwrap(),
            "--checkpoint-every",
            "8",
            "--workload",
            "burst",
            "--shards",
            "4",
            "--adaptive",
            "--advise-every",
            "50",
            "--write-every-ms",
            "1",
            "--duration-ms",
            "120000",
            "--threads",
            "2",
            "--metrics-addr",
            "127.0.0.1:0",
            "--no-fsync",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn kaskade serve --adaptive");
    let stderr = child.stderr.take().expect("stderr piped");
    let mut lines = BufReader::new(stderr).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("serve exited before announcing the endpoint")
            .expect("read stderr");
        if let Some(rest) = line.strip_prefix("metrics endpoint on http://") {
            break rest.trim_end_matches("/metrics").to_string();
        }
    };
    let drain = std::thread::spawn(move || for _ in lines.by_ref() {});

    let scrape = |addr: &str| -> Option<String> {
        let mut s = std::net::TcpStream::connect(addr).ok()?;
        s.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").ok()?;
        let mut out = String::new();
        s.read_to_string(&mut out).ok()?;
        Some(out)
    };
    let counter = |body: &str, name: &str| -> u64 {
        body.lines()
            .find_map(|l| l.strip_prefix(name))
            .and_then(|rest| rest.trim().parse::<f64>().ok())
            .map_or(0, |v| v as u64)
    };

    // wait until the advisor has migrated in BOTH directions — created
    // a view the workload wanted and dropped one that earned nothing
    let deadline = Instant::now() + Duration::from_secs(90);
    loop {
        if let Some(body) = scrape(&addr) {
            if counter(&body, "kaskade_views_created_total ") >= 1
                && counter(&body, "kaskade_views_dropped_total ") >= 1
            {
                break;
            }
        }
        assert!(
            child.try_wait().expect("try_wait").is_none(),
            "server exited before it could be killed"
        );
        assert!(Instant::now() < deadline, "advisor never migrated online");
        std::thread::sleep(Duration::from_millis(50));
    }
    // kill -9 mid-churn: DDL epochs are interleaved with batch epochs
    // wherever the scheduler left them
    child.kill().expect("SIGKILL");
    child.wait().expect("reap");
    drain.join().unwrap();

    // recover on the same shard layout; --recover implies the per-read
    // and end-of-run consistency verification
    let out = Command::new(bin)
        .args([
            "serve",
            "prov",
            "--wal-dir",
            dir.to_str().unwrap(),
            "--recover",
            "--shards",
            "4",
            "--duration-ms",
            "300",
            "--write-every-ms",
            "2",
            "--threads",
            "1",
            "--stats-json",
            "--no-fsync",
        ])
        .output()
        .expect("run kaskade serve --recover");
    let stderr = String::from_utf8_lossy(&out.stderr);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "adaptive recovery run failed\n--- stderr ---\n{stderr}\n--- stdout ---\n{stdout}"
    );
    let recovered: u64 = stderr
        .lines()
        .find_map(|l| l.strip_prefix("recovered epoch "))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("no recovery line in stderr:\n{stderr}"));
    assert!(recovered >= 1, "expected durable epochs before the kill");
    // the post-DDL catalog came back: the advisor-created connector is
    // live (it started from an empty catalog, so only replayed KIND_DDL
    // records can have put it there) and passes the scratch-rebuild
    // oracle
    assert!(
        stdout.contains("\"name\":\"connector:"),
        "advisor-created connector missing from the recovered catalog:\n{stdout}"
    );
    assert!(
        stdout.contains("\"final_consistent\":true"),
        "recovered post-DDL catalog failed the scratch-rebuild comparison:\n{stdout}"
    );
    // survivors kept refreshing incrementally after recovery
    assert!(
        stdout.contains("\"views_rematerialized\":0"),
        "recovered views fell back to re-materialization:\n{stdout}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
