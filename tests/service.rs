//! Integration suite for the `kaskade-service` serving runtime:
//! snapshot isolation under concurrent readers and an active delta
//! writer (zero torn reads), plan-cache behavior on repeated
//! workloads, and property tests for plan-key alpha-normalization.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use proptest::prelude::*;

use kaskade::core::{ConnectorDef, GraphDelta, Kaskade, ViewDef};
use kaskade::datasets::{generate_provenance, ProvenanceConfig};
use kaskade::graph::Schema;
use kaskade::query::{execute as execute_raw, listings::LISTING_1, parse, Table};
use kaskade::service::{
    churn_delta, drive, plan_key, snapshot_is_consistent, DriveConfig, Engine, EngineConfig,
    HashPartitioner, ShardedConfig, ShardedEngine, SubmitError, SubmitOpts, Workload,
};

fn tiny_instance(seed: u64) -> Kaskade {
    let g = generate_provenance(&ProvenanceConfig::tiny(seed).core_only());
    let mut k = Kaskade::new(g, Schema::provenance());
    k.materialize_view(ViewDef::Connector(ConnectorDef::k_hop("Job", "Job", 2)));
    k
}

fn norm(t: &Table) -> Vec<String> {
    let mut rows: Vec<String> = t.rows.iter().map(|r| format!("{r:?}")).collect();
    rows.sort();
    rows
}

/// THE acceptance property: ≥4 reader threads execute queries through
/// the engine while a writer applies deltas, and every snapshot a
/// reader observes is internally consistent — the plan-routed result
/// over the view equals raw execution over the same snapshot's base
/// graph (a torn read, e.g. a refreshed view paired with a stale base
/// graph, would break the equality), and every catalog entry matches a
/// fresh materialization of its definition.
#[test]
fn concurrent_readers_never_observe_torn_snapshots() {
    let engine = Engine::from_kaskade(&tiny_instance(51));
    let query = parse(LISTING_1).unwrap();
    let iterations_per_reader = 12;
    let readers = 4;
    let checks = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for _ in 0..readers {
            let (engine, query, checks) = (&engine, &query, &checks);
            scope.spawn(move || {
                let mut reader = engine.reader();
                let mut last_epoch = 0u64;
                for _ in 0..iterations_per_reader {
                    let snap = reader.snapshot().clone();
                    assert!(snap.epoch >= last_epoch, "epochs regress");
                    last_epoch = snap.epoch;

                    // the whole query runs against one immutable state:
                    // view-routed and raw answers must coincide
                    let planned = snap.state.plan(query).unwrap();
                    assert!(planned.view_id.is_some(), "rewrites route to the view");
                    let via_view = snap.state.execute_planned(&planned).unwrap();
                    let raw = execute_raw(snap.state.graph(), query).unwrap();
                    assert_eq!(norm(&via_view), norm(&raw), "torn read at {}", snap.epoch);

                    // catalog entries match their materialized views
                    assert!(snapshot_is_consistent(&snap.state), "at {}", snap.epoch);
                    checks.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // the writer streams deltas the whole time: a new job reading
        // an existing file (extends blast radii, so results change
        // across epochs — consistency within one snapshot still holds)
        let engine = &engine;
        scope.spawn(move || {
            for step in 0..60u64 {
                let snap = engine.snapshot();
                let file = snap.state.graph().vertices_of_type("File").next().unwrap();
                let mut d = GraphDelta::new();
                let j = d.add_vertex("Job", vec![]);
                d.add_edge(
                    kaskade::core::VRef::Existing(file),
                    j,
                    "IS_READ_BY",
                    vec![("ts".into(), kaskade::graph::Value::Int(step as i64))],
                );
                engine.submit(d, SubmitOpts::default()).unwrap();
                std::thread::sleep(Duration::from_millis(1));
            }
        });
    });

    assert_eq!(
        checks.load(Ordering::Relaxed),
        readers * iterations_per_reader
    );
    let epoch = engine.flush();
    assert!(epoch > 0, "the writer actually published");
}

/// The acceptance criterion's cache half: a repeated workload reports a
/// plan-cache hit rate > 0 while ≥4 readers run against an active
/// writer; and reads that hit the cache return the same answer as
/// reads that planned from scratch.
#[test]
fn repeated_workload_reports_cache_hits_under_writes() {
    let engine = Engine::from_kaskade(&tiny_instance(52));
    let queries = vec![parse(LISTING_1).unwrap()];
    let outcome = drive(
        &engine,
        &queries,
        &DriveConfig {
            readers: 4,
            duration: Duration::from_millis(400),
            read_pause: Duration::ZERO,
            write_pause: Duration::from_millis(2),
            max_writes: 0,
            verify_consistency: true,
            workload: Workload::Append,
        },
    );
    assert!(outcome.reads >= 8, "enough reads to repeat: {outcome:?}");
    assert_eq!(outcome.read_errors, 0);
    assert_eq!(outcome.consistency_violations, 0, "zero torn reads");
    assert!(outcome.writes > 0, "the writer was active");
    assert!(
        outcome.report.plan_cache_hit_rate() > 0.0,
        "repeated workload must hit the cache: {:?}",
        outcome.report
    );
    assert!(outcome.report.epoch > 0);
    assert_eq!(outcome.report.queries, outcome.reads);
}

/// THE retraction acceptance property: ≥4 readers run against a churn
/// writer (interleaved inserts, edge retractions, and vertex
/// retractions), and every snapshot a reader observes is internally
/// consistent — each materialized view equals a from-scratch
/// re-materialization over that snapshot's base graph (stale connector
/// edges from a retracted base edge would fail this), and the
/// incrementally maintained statistics equal an exact
/// `GraphStats::compute` over the same graph.
#[test]
fn churn_writer_keeps_views_and_stats_consistent() {
    let engine = Engine::from_kaskade(&tiny_instance(54));
    let readers = 4;
    let iterations_per_reader = 10;
    let checks = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for _ in 0..readers {
            let (engine, checks) = (&engine, &checks);
            scope.spawn(move || {
                let mut reader = engine.reader();
                for _ in 0..iterations_per_reader {
                    let snap = reader.snapshot().clone();
                    // views vs scratch rebuild AND stats vs full compute
                    assert!(
                        snapshot_is_consistent(&snap.state),
                        "inconsistent snapshot at epoch {}",
                        snap.epoch
                    );
                    checks.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // churn writer: scripted interleave of appends, edge
        // retractions, and cascading vertex retractions
        let engine = &engine;
        scope.spawn(move || {
            for step in 0..80u64 {
                let snap = engine.snapshot();
                if let Some(delta) = churn_delta(&snap.state, step) {
                    if engine.submit(delta, SubmitOpts::default()).is_err() {
                        break;
                    }
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        });
    });

    assert_eq!(
        checks.load(Ordering::Relaxed),
        readers * iterations_per_reader
    );
    let epoch = engine.flush();
    assert!(epoch > 0, "the churn writer actually published");
    let report = engine.metrics();
    assert!(
        report.retractions_applied > 0,
        "churn retracted: {report:?}"
    );
    // and the final state passes the oracle one more time
    assert!(snapshot_is_consistent(&engine.snapshot().state));
}

/// The same churn acceptance, driven through the shared `drive` harness
/// with per-read verification on — zero violations end to end.
#[test]
fn drive_churn_smoke_has_zero_violations() {
    let engine = Engine::from_kaskade(&tiny_instance(55));
    let queries = vec![parse(LISTING_1).unwrap()];
    let outcome = drive(
        &engine,
        &queries,
        &DriveConfig {
            readers: 4,
            duration: Duration::from_millis(400),
            read_pause: Duration::ZERO,
            write_pause: Duration::from_millis(1),
            max_writes: 0,
            verify_consistency: true,
            workload: Workload::Churn,
        },
    );
    assert!(outcome.reads > 0);
    assert_eq!(outcome.read_errors, 0);
    assert_eq!(outcome.consistency_violations, 0, "zero torn reads");
    assert!(outcome.final_consistent, "final snapshot passes the oracle");
    assert!(outcome.writes > 0, "the churn writer was active");
}

/// THE sharding acceptance property: ≥4 reader threads against a churn
/// writer on a 4-shard engine observe **zero torn reads** — every
/// snapshot a reader holds carries shard states captured at one global
/// publish (never shard epochs from two different publishes), the
/// shard partitions sum to the global graph, and the merged per-shard
/// statistics equal the global statistics.
#[test]
fn sharded_readers_never_observe_torn_shard_epochs() {
    let engine = ShardedEngine::from_kaskade(&tiny_instance(56), 4);
    let readers = 4;
    let iterations_per_reader = 12;
    let checks = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for _ in 0..readers {
            let (engine, checks) = (&engine, &checks);
            scope.spawn(move || {
                let mut reader = engine.reader();
                let mut last_epoch = 0u64;
                let mut last_shard_epochs = [0u64; 4];
                for _ in 0..iterations_per_reader {
                    let snap = std::sync::Arc::clone(reader.snapshot());
                    assert!(snap.epoch >= last_epoch, "global epochs regress");
                    last_epoch = snap.epoch;
                    // shard epochs never regress across the snapshots a
                    // reader observes: a shard state left over from an
                    // older global publish would violate this
                    for (i, state) in snap.shard_states.iter().enumerate() {
                        assert!(
                            state.epoch >= last_shard_epochs[i],
                            "shard {i} regressed at global epoch {}",
                            snap.epoch
                        );
                        last_shard_epochs[i] = state.epoch;
                    }
                    // the structural torn-publish detector: shard
                    // edge/vertex partitions sum to the global graph and
                    // merged per-shard stats equal the global stats — a
                    // shard state from a different publish breaks these
                    assert!(snap.is_coherent(), "torn snapshot at {}", snap.epoch);
                    // the global read state itself passes the full
                    // view/stats oracle
                    assert!(snapshot_is_consistent(&snap.state), "at {}", snap.epoch);
                    checks.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        let engine = &engine;
        scope.spawn(move || {
            for step in 0..80u64 {
                let snap = engine.snapshot();
                if let Some(delta) = churn_delta(&snap.state, step) {
                    if engine.submit(delta, SubmitOpts::default()).is_err() {
                        break;
                    }
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        });
    });

    assert_eq!(
        checks.load(Ordering::Relaxed),
        readers * iterations_per_reader
    );
    let epoch = engine.flush();
    assert!(epoch > 0, "the churn writer actually published");
    assert!(engine.snapshot().is_coherent());
}

/// Backpressure coverage: a 1-capacity queue actually fills, the typed
/// `Backpressure` error surfaces through both `Engine::submit` and the
/// sharded router, nothing is enqueued for a refused submission, and
/// the `deltas_backpressured` counter matches the refusals observed.
#[test]
fn backpressure_surfaces_and_counter_matches() {
    let g = generate_provenance(&ProvenanceConfig::tiny(57).core_only());

    // single engine: queue capacity 1, single-delta batches
    let engine = Engine::with_config(
        kaskade::core::Snapshot::new(g.clone(), Schema::provenance()),
        EngineConfig {
            max_batch: 1,
            queue_capacity: 1,
            ..EngineConfig::default()
        },
    );
    let mut refused = 0u64;
    let mut accepted = 0u64;
    for _ in 0..200_000 {
        let mut d = GraphDelta::new();
        d.add_vertex("File", vec![]);
        match engine.submit(d, SubmitOpts::default()) {
            Ok(()) => accepted += 1,
            Err(SubmitError::Backpressure) => {
                refused += 1;
                if refused >= 3 {
                    break;
                }
            }
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    assert!(refused >= 1, "1-capacity queue never pushed back");
    assert_eq!(
        engine.metrics().deltas_backpressured,
        refused,
        "counter must match observed refusals"
    );
    // refused submissions were not enqueued: everything accepted (and
    // nothing else) eventually lands
    engine.flush();
    assert_eq!(engine.queue_depth(), 0);
    assert_eq!(engine.metrics().deltas_applied, accepted);

    // sharded router: same bounded-queue contract
    let sharded = ShardedEngine::with_config(
        kaskade::core::Snapshot::new(g, Schema::provenance()),
        ShardedConfig {
            partitioner: std::sync::Arc::new(HashPartitioner::new(2)),
            max_batch: 1,
            queue_capacity: 1,
            scatter_min_vertices: 0,
            ..ShardedConfig::hash(2)
        },
    );
    let mut refused = 0u64;
    let mut accepted = 0u64;
    for _ in 0..200_000 {
        let mut d = GraphDelta::new();
        d.add_vertex("File", vec![]);
        match sharded.submit(d, SubmitOpts::default()) {
            Ok(()) => accepted += 1,
            Err(SubmitError::Backpressure) => {
                refused += 1;
                if refused >= 3 {
                    break;
                }
            }
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    assert!(refused >= 1, "sharded router never pushed back");
    let report = sharded.metrics();
    assert_eq!(report.global.deltas_backpressured, refused);
    sharded.flush();
    assert_eq!(sharded.queue_depth(), 0);
    assert_eq!(sharded.metrics().global.deltas_applied, accepted);
    // the engine keeps serving after shedding load
    let mut d = GraphDelta::new();
    d.add_vertex("Job", vec![]);
    sharded.submit(d, SubmitOpts::default()).unwrap();
    sharded.flush();
    assert!(sharded.snapshot().is_coherent());
}

/// The sharded engine driven through the same `drive` harness the CLI
/// and benches use: zero violations with per-read verification on.
#[test]
fn drive_sharded_churn_has_zero_violations() {
    let engine = ShardedEngine::from_kaskade(&tiny_instance(58), 3);
    let queries = vec![parse(LISTING_1).unwrap()];
    let outcome = drive(
        &engine,
        &queries,
        &DriveConfig {
            readers: 4,
            duration: Duration::from_millis(300),
            read_pause: Duration::ZERO,
            write_pause: Duration::from_millis(1),
            max_writes: 0,
            verify_consistency: true,
            workload: Workload::Churn,
        },
    );
    assert!(outcome.reads > 0);
    assert_eq!(outcome.read_errors, 0);
    assert_eq!(outcome.consistency_violations, 0, "zero torn reads");
    assert!(outcome.final_consistent, "final snapshot passes the oracle");
    assert!(outcome.writes > 0, "the churn writer was active");
}

/// CLI argument validation: `--shards 0` and `--threads 0` must exit
/// cleanly with code 2 and a pointed message — not panic and not
/// silently clamp to a degenerate single-shard/single-thread run.
#[test]
fn cli_rejects_zero_shards_and_zero_threads() {
    let bin = env!("CARGO_BIN_EXE_kaskade");
    for (args, needle) in [
        (vec!["serve", "prov", "--shards", "0"], "--shards"),
        (vec!["serve", "prov", "--threads", "0"], "--threads"),
        (
            vec!["query", "prov", "--threads", "0", "@listing1"],
            "--threads",
        ),
    ] {
        let out = std::process::Command::new(bin)
            .args(&args)
            .output()
            .expect("spawn kaskade CLI");
        assert_eq!(
            out.status.code(),
            Some(2),
            "{args:?} must exit 2, got {:?}",
            out.status
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(needle) && stderr.contains("at least 1"),
            "{args:?} stderr lacks a pointed message:\n{stderr}"
        );
    }
}

/// Churn through the shared `drive` harness with an aggressive
/// compaction policy: slot capacity stays bounded relative to live
/// size, the final snapshot passes the full oracle, and per-read
/// verification sees zero violations across the compaction fences.
#[test]
fn drive_churn_compacts_without_violations() {
    let engine = Engine::with_config(
        tiny_instance(59).snapshot(),
        EngineConfig {
            max_batch: 4,
            compact_dead_ratio: 0.05,
            ..EngineConfig::default()
        },
    );
    let queries = vec![parse(LISTING_1).unwrap()];
    let outcome = drive(
        &engine,
        &queries,
        &DriveConfig {
            readers: 4,
            duration: Duration::from_millis(600),
            read_pause: Duration::ZERO,
            write_pause: Duration::from_millis(1),
            max_writes: 0,
            verify_consistency: true,
            workload: Workload::Churn,
        },
    );
    assert_eq!(outcome.read_errors, 0);
    assert_eq!(outcome.consistency_violations, 0, "zero torn reads");
    assert!(outcome.final_consistent, "final snapshot passes the oracle");
    let report = &outcome.report;
    assert!(
        report.compactions_run >= 1,
        "aggressive policy must compact under churn: {report:?}"
    );
    assert!(report.slots_reclaimed > 0);
    let snap = engine.snapshot();
    let g = snap.state.graph();
    let live = g.vertex_count() + g.edge_count();
    let capacity = g.vertex_slots() + g.edge_slots();
    assert!(
        capacity <= 2 * live + 256,
        "capacity {capacity} not bounded vs live {live}: {report:?}"
    );
}

/// Batching applies many queued deltas in one publish; the final state
/// must equal sequential application.
#[test]
fn batched_ingestion_converges_to_sequential_state() {
    let k = tiny_instance(53);
    let query = parse(LISTING_1).unwrap();

    // sequential oracle
    let mut sequential = k.clone();
    let deltas: Vec<GraphDelta> = (0..10)
        .map(|i| {
            let file = sequential
                .graph()
                .vertices_of_type("File")
                .nth(i % 3)
                .unwrap();
            let mut d = GraphDelta::new();
            let j = d.add_vertex("Job", vec![]);
            d.add_edge(kaskade::core::VRef::Existing(file), j, "IS_READ_BY", vec![]);
            d
        })
        .collect();
    for d in &deltas {
        sequential.apply_delta(d);
    }

    // engine path: all ten queued before the worker can drain
    let engine = Engine::with_config(
        k.snapshot(),
        EngineConfig {
            max_batch: 16,
            ..EngineConfig::default()
        },
    );
    for d in &deltas {
        engine.submit(d.clone(), SubmitOpts::default()).unwrap();
    }
    engine.flush();
    let snap = engine.snapshot();
    assert_eq!(
        snap.state.graph().vertex_count(),
        sequential.graph().vertex_count()
    );
    assert_eq!(
        snap.state.graph().edge_count(),
        sequential.graph().edge_count()
    );
    let via_engine = snap.state.execute(&query).unwrap();
    let via_sequential = sequential.execute(&query).unwrap();
    assert_eq!(norm(&via_engine), norm(&via_sequential));
    // fewer publishes than deltas proves batching actually batched
    assert!(
        engine.metrics().batches_published <= 10,
        "{:?}",
        engine.metrics()
    );
}

/// The tracing acceptance property at the library level: a sharded
/// engine with one shared tracer records the whole pipeline — router
/// write batches with retroactive queue waits, per-view refresh spans
/// annotated with DAG level, shard-labeled spans from the per-shard
/// engines, and the scatter/gather read path under the query root.
#[test]
fn sharded_tracer_records_the_whole_pipeline() {
    use kaskade::service::{Stage, Tracer};
    use std::sync::Arc;

    let k = tiny_instance(61);
    let tracer = Arc::new(Tracer::new(true));
    let engine = ShardedEngine::with_config(
        k.snapshot(),
        ShardedConfig {
            scatter_min_vertices: 0, // always exercise scatter/gather
            tracer: Some(Arc::clone(&tracer)),
            ..ShardedConfig::hash(2)
        },
    );
    for i in 0..4u64 {
        let snap = engine.snapshot();
        let d = churn_delta(&snap.state, i).expect("churn delta");
        engine.submit(d, SubmitOpts::default()).unwrap();
        engine.flush();
    }
    let query = parse(LISTING_1).unwrap();
    engine.execute(&query).unwrap();

    let events = tracer.dump();
    let has = |stage: Stage| events.iter().any(|e| e.stage == stage);
    for stage in [
        Stage::WriteBatch,
        Stage::QueueWait,
        Stage::Apply,
        Stage::MergePublish,
        Stage::RefreshView,
        Stage::Publish,
        Stage::Query,
        Stage::PlanCacheLookup,
        Stage::Plan,
        Stage::PoolDispatch,
        Stage::Scatter,
        Stage::Gather,
        Stage::Relational,
    ] {
        assert!(has(stage), "no {stage} event in:\n{}", tracer.render_dump());
    }
    // the merged publish is part of the apply, not a separate epoch
    let merge = events
        .iter()
        .find(|e| e.stage == Stage::MergePublish)
        .unwrap();
    assert!(
        events
            .iter()
            .any(|e| e.id == merge.parent && e.stage == Stage::Apply),
        "merge_publish not parented to an apply span"
    );
    // per-view spans carry the view name and DAG level, parented under
    // an apply span of the same batch
    let refresh = events
        .iter()
        .find(|e| e.stage == Stage::RefreshView)
        .unwrap();
    assert!(refresh.detail.contains("level="), "{refresh:?}");
    assert!(
        events
            .iter()
            .any(|e| e.id == refresh.parent && e.stage == Stage::Apply),
        "refresh_view not parented to an apply span"
    );
    // shard engines label their spans shardN through the shared tracer
    assert!(
        events.iter().any(|e| e.detail.starts_with("shard")),
        "no shard-labeled event in:\n{}",
        tracer.render_dump()
    );
    // the sharded report merges per-shard apply histograms: quantiles
    // reflect recorded applies even though they happened on the shards
    let report = engine.metrics();
    assert!(report.global.apply_p99 > Duration::ZERO);
    assert!(!report.global.per_view.is_empty(), "per-view metrics empty");
}

/// Zero thread spawns in steady-state serving: after the first
/// publish and the first query warmed every path, further writes and
/// scatter/gather queries run entirely on the persistent worker pool.
/// The pool's dispatch counter must grow while the global ad-hoc
/// scoped-spawn counter ([`kaskade::graph::thread_spawns`]) stays
/// flat — the counter every pre-pool code path (per-query
/// `thread::scope` scatter, per-publish refresh spawns) used to bump.
#[test]
fn steady_state_serving_spawns_no_threads() {
    let k = tiny_instance(73);
    let engine = ShardedEngine::with_config(
        k.snapshot(),
        ShardedConfig {
            scatter_min_vertices: 0, // always exercise scatter/gather
            ..ShardedConfig::hash(3)
        },
    );
    let query = parse(LISTING_1).unwrap();
    // warmup: first publish + first query
    let snap = engine.snapshot();
    let d = churn_delta(&snap.state, 0).expect("churn delta");
    engine.submit(d, SubmitOpts::default()).unwrap();
    engine.flush();
    engine.execute(&query).unwrap();

    let spawns_before = kaskade::graph::thread_spawns();
    let dispatches_before = engine.pool().dispatches();
    for i in 1..6u64 {
        let snap = engine.snapshot();
        let d = churn_delta(&snap.state, i).expect("churn delta");
        engine.submit(d, SubmitOpts::default()).unwrap();
        engine.flush();
        engine.execute(&query).unwrap();
    }
    assert!(
        engine.pool().dispatches() > dispatches_before,
        "serving never dispatched to the persistent pool"
    );
    assert_eq!(
        kaskade::graph::thread_spawns(),
        spawns_before,
        "steady-state serving spawned ad-hoc scoped threads"
    );
}

/// The `scatter_min_vertices` threshold: below it the pattern stage
/// runs inline on the caller thread (no pool dispatch, no scatter
/// spans — per-query fan-out would cost more than the matching on a
/// small graph), and the inline result is identical to the scattered
/// one.
#[test]
fn scatter_threshold_inlines_small_graphs() {
    use kaskade::service::{Stage, Tracer};
    use std::sync::Arc;

    let k = tiny_instance(77);
    let query = parse(LISTING_1).unwrap();
    let inline_tracer = Arc::new(Tracer::new(true));
    let inline_engine = ShardedEngine::with_config(
        k.snapshot(),
        ShardedConfig {
            scatter_min_vertices: usize::MAX,
            tracer: Some(Arc::clone(&inline_tracer)),
            ..ShardedConfig::hash(2)
        },
    );
    let scatter_engine = ShardedEngine::with_config(
        k.snapshot(),
        ShardedConfig {
            scatter_min_vertices: 0,
            ..ShardedConfig::hash(2)
        },
    );
    let a = inline_engine.execute(&query).unwrap();
    let b = scatter_engine.execute(&query).unwrap();
    assert_eq!(a, b, "inline and scattered execution diverged");
    // no reads were scattered: the query never touched the pool and
    // recorded no scatter or dispatch spans
    assert_eq!(inline_engine.pool().dispatches(), 0);
    let events = inline_tracer.dump();
    assert!(events.iter().any(|e| e.stage == Stage::Query));
    assert!(
        !events
            .iter()
            .any(|e| e.stage == Stage::Scatter || e.stage == Stage::PoolDispatch),
        "inline path recorded scatter spans:\n{}",
        inline_tracer.render_dump()
    );
    assert!(scatter_engine.pool().dispatches() > 0);
}

/// `kaskade serve --metrics-addr 127.0.0.1:0` end to end: the CLI
/// prints the resolved endpoint on stderr; scraping it mid-run yields
/// Prometheus text with the key series and a live `/healthz`.
#[test]
fn cli_serves_scrapeable_metrics_endpoint() {
    use std::io::{BufRead, BufReader, Read as _, Write as _};

    let bin = env!("CARGO_BIN_EXE_kaskade");
    let mut child = std::process::Command::new(bin)
        .args([
            "serve",
            "prov",
            "--duration-ms",
            "4000",
            "--shards",
            "2",
            "--trace",
            "on",
            "--metrics-addr",
            "127.0.0.1:0",
            "--write-every-ms",
            "5",
        ])
        .stderr(std::process::Stdio::piped())
        .stdout(std::process::Stdio::null())
        .spawn()
        .expect("spawn kaskade serve");
    let stderr = child.stderr.take().expect("stderr piped");
    let mut lines = BufReader::new(stderr).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("serve exited before announcing the endpoint")
            .expect("read stderr");
        if let Some(rest) = line.strip_prefix("metrics endpoint on http://") {
            break rest.trim_end_matches("/metrics").to_string();
        }
    };
    // drain stderr in the background so the child never blocks on a
    // full pipe
    let drain = std::thread::spawn(move || for _ in lines.by_ref() {});

    let get = |path: &str| {
        let mut s = std::net::TcpStream::connect(&addr).expect("connect to endpoint");
        s.write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
            .unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    };
    assert!(get("/healthz").contains("ok"));
    let metrics = get("/metrics");
    for needle in [
        "HTTP/1.0 200 OK",
        "# TYPE kaskade_queries_total counter",
        "kaskade_shard_owned_slots{shard=\"0\"}",
        "kaskade_shard_owned_slots{shard=\"1\"}",
        "# TYPE kaskade_apply_latency_seconds histogram",
        "kaskade_trace_enabled 1",
    ] {
        assert!(
            metrics.contains(needle),
            "missing `{needle}` in:\n{metrics}"
        );
    }
    assert!(get("/trace").contains("flight recorder"));

    let status = child.wait().expect("wait for serve");
    drain.join().unwrap();
    assert!(status.success(), "serve run failed: {status:?}");
}

/// `--stats-json` emits one machine-readable line on stdout — the
/// contract the CI overhead gate consumes.
#[test]
fn cli_stats_json_reports_the_final_outcome() {
    let bin = env!("CARGO_BIN_EXE_kaskade");
    let out = std::process::Command::new(bin)
        .args([
            "serve",
            "prov",
            "--duration-ms",
            "400",
            "--write-every-ms",
            "5",
            "--stats-json",
        ])
        .output()
        .expect("spawn kaskade serve");
    assert!(out.status.success(), "{:?}", out.status);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let json = stdout
        .lines()
        .find(|l| l.starts_with("{\"vertices\":"))
        .unwrap_or_else(|| panic!("no JSON line in:\n{stdout}"));
    for key in [
        "\"edges\":",
        "\"reads\":",
        "\"reads_per_sec\":",
        "\"epoch\":",
        "\"deltas_applied\":",
        "\"p99_ns\":",
        "\"apply_p99_ns\":",
        "\"slow_queries\":",
        "\"per_view\":[",
    ] {
        assert!(json.contains(key), "missing `{key}` in:\n{json}");
    }
    assert!(json.ends_with("]}"), "not a closed JSON object:\n{json}");
}

/// A DDL publish invalidates the plan cache with **no carry-forward**:
/// a cached plan that names a dropped [`ViewId`] can never be served
/// after the drop (the epoch-keyed cache starts empty, the replan
/// routes to the base graph), and once an identical view is recreated
/// the very same query plans against the **new** view under a fresh
/// id — tombstoned slots are never reused.
///
/// [`ViewId`]: kaskade::core::ViewId
#[test]
fn plan_cache_never_serves_plans_across_ddl() {
    use kaskade::core::DdlOp;

    let engine = Engine::from_kaskade(&tiny_instance(62));
    let q = parse(LISTING_1).unwrap();
    let before = engine.execute(&q).unwrap();
    let snap = engine.snapshot();
    let planned = snap.state.plan(&q).unwrap();
    let dropped = planned.view_id.expect("LISTING_1 routes through the view");

    assert!(engine.submit_ddl(DdlOp::DropView(dropped)));
    engine.flush();
    // identical query: the pre-DDL cache entry names a tombstoned
    // slot; serving it would be an UnknownView error. The post-DDL
    // epoch must miss, replan, and answer from the base graph.
    let misses_before = engine.metrics().plan_cache_misses;
    let after = engine.execute(&q).unwrap();
    assert_eq!(
        norm(&before),
        norm(&after),
        "drop changes routing, not results"
    );
    assert_eq!(
        engine.metrics().plan_cache_misses,
        misses_before + 1,
        "no plan carry-forward across a DDL epoch"
    );
    let snap = engine.snapshot();
    assert!(snap.state.plan(&q).unwrap().view_id.is_none());

    // recreate an identical view: same query now routes through it,
    // under a fresh id (the dropped slot stays tombstoned forever)
    let def = ViewDef::Connector(ConnectorDef::k_hop("Job", "Job", 2));
    assert!(engine.submit_ddl(DdlOp::CreateView(def)));
    engine.flush();
    let recreated = engine.execute(&q).unwrap();
    assert_eq!(norm(&before), norm(&recreated));
    let snap = engine.snapshot();
    let replanned = snap.state.plan(&q).unwrap();
    assert!(
        replanned.view_id.is_some(),
        "routes through the recreated view"
    );
    assert_ne!(replanned.view_id, Some(dropped), "ViewIds are never reused");
}

/// `id(v) = <ext>` point queries resolve through the epoch-published
/// external-id table into a pinned single-slot scan: they answer
/// correctly right after ingestion, keep answering after slot
/// compaction renumbers the underlying vertices, degrade to an empty
/// table (never an error) for unmapped ids, and the sharded
/// coordinator answers byte-identically to the single engine.
#[test]
fn anchored_point_queries_survive_compaction_and_match_sharded() {
    use kaskade::graph::Value;

    let point = |ext: u64| {
        parse(&format!(
            "SELECT B.CPU FROM (
                MATCH (a:Job)-[:WRITES_TO]->(f:File) (f:File)-[:IS_READ_BY]->(b:Job)
                RETURN a AS A, b AS B) WHERE id(A) = {ext}"
        ))
        .unwrap()
    };
    // one delta wires ext-addressed jobs around a fresh file:
    // j(7001) -> f -> j(7002)
    let mut seed = GraphDelta::new();
    let a = seed.add_vertex_ext("Job", 7001, vec![("CPU".into(), Value::Int(77))]);
    let f = seed.add_vertex("File", vec![]);
    let b = seed.add_vertex_ext("Job", 7002, vec![("CPU".into(), Value::Int(88))]);
    seed.add_edge(a, f, "WRITES_TO", vec![]);
    seed.add_edge(f, b, "IS_READ_BY", vec![]);
    // churn fodder: short-lived ext vertices whose retraction leaves
    // enough dead slots to cross the aggressive compaction threshold
    let mut fodder = GraphDelta::new();
    for ext in 8000..8080u64 {
        fodder.add_vertex_ext("Job", ext, vec![]);
    }
    let mut retract = GraphDelta::new();
    for ext in 8000..8080u64 {
        retract.del_vertex_ext(ext);
    }

    let engine = Engine::with_config(
        tiny_instance(61).snapshot(),
        EngineConfig {
            compact_dead_ratio: 0.05,
            ..EngineConfig::default()
        },
    );
    engine.submit(seed.clone(), SubmitOpts::default()).unwrap();
    engine.flush();
    let hit = engine.execute(&point(7001)).unwrap();
    assert_eq!(norm(&hit), vec!["[Val(Int(88))]".to_string()]);
    // unmapped id: empty with the query's columns, not an error
    let miss = engine.execute(&point(9999)).unwrap();
    assert_eq!(miss.columns, vec!["B.CPU".to_string()]);
    assert!(miss.rows.is_empty());

    engine
        .submit(fodder.clone(), SubmitOpts::default())
        .unwrap();
    engine.flush();
    engine
        .submit(retract.clone(), SubmitOpts::default())
        .unwrap();
    engine.flush();
    assert!(
        engine.metrics().compactions_run >= 1,
        "churn must compact: {:?}",
        engine.metrics()
    );
    // the table followed the remap: same external id, same answer
    let after = engine.execute(&point(7001)).unwrap();
    assert_eq!(norm(&after), vec!["[Val(Int(88))]".to_string()]);
    let retired = engine.execute(&point(8003)).unwrap();
    assert!(retired.rows.is_empty(), "retired ids resolve to nothing");

    // sharded parity: the same ingest through a 4-shard coordinator
    // answers every anchored query identically
    let sharded = ShardedEngine::from_kaskade(&tiny_instance(61), 4);
    for d in [seed, fodder, retract] {
        sharded.submit(d, SubmitOpts::default()).unwrap();
        sharded.flush();
    }
    for ext in [7001, 7002, 8003, 9999] {
        let s = sharded.execute(&point(ext)).unwrap();
        let e = engine.execute(&point(ext)).unwrap();
        assert_eq!(s.columns, e.columns, "ext {ext}");
        assert_eq!(norm(&s), norm(&e), "ext {ext}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Alpha-equivalent queries — identical structure and output
    /// aliases, arbitrarily renamed pattern variables — get identical
    /// plan-cache keys, for any suffixes and any hop window.
    #[test]
    fn plan_key_is_alpha_invariant(
        s1 in "[a-z]{0,6}",
        s2 in "[a-z]{0,6}",
        lo in 0usize..3,
        span in 0usize..4,
    ) {
        let hi = lo + span + 1;
        let build = |a: &str, b: &str, c: &str| {
            parse(&format!(
                "SELECT COUNT(*) FROM (MATCH ({a}:Job)-[:WRITES_TO]->({b}:File) \
                 ({b}:File)-[r*{lo}..{hi}]->({c}:File) RETURN {a} AS A, {c} AS C)"
            ))
            .expect("template parses")
        };
        // distinct leading letters keep the three variables distinct
        // regardless of the generated suffixes
        let q1 = build(&format!("a{s1}"), &format!("b{s1}"), &format!("c{s1}"));
        let q2 = build(&format!("x{s2}"), &format!("y{s2}"), &format!("z{s2}"));
        prop_assert_eq!(plan_key(&q1), plan_key(&q2));
    }

    /// Structural changes (hop window) and alias changes do key
    /// separately even under renaming.
    #[test]
    fn plan_key_separates_structure(
        s in "[a-z]{0,6}",
        lo in 0usize..3,
        span in 0usize..4,
    ) {
        let hi = lo + span + 1;
        let build = |alias: &str, lo: usize, hi: usize| {
            parse(&format!(
                "SELECT COUNT(*) FROM (MATCH (a{s}:Job)-[r*{lo}..{hi}]->(b{s}:Job) \
                 RETURN a{s} AS {alias})"
            ))
            .expect("template parses")
        };
        let base = build("A", lo, hi);
        prop_assert_ne!(plan_key(&base), plan_key(&build("A", lo, hi + 1)));
        prop_assert_ne!(plan_key(&base), plan_key(&build("B", lo, hi)));
    }
}
